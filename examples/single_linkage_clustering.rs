//! Single-linkage hierarchical clustering via MST — the clustering
//! application the paper cites ([4], [38]–[40]: "Large scale experiments
//! … for complete graphs stemming from geometric MST-based clustering").
//!
//! Single-linkage clustering with k clusters = build the MST of the
//! point-distance graph, then delete the k−1 heaviest MST edges. We use
//! a neighbourhood graph over three Gaussian-ish blobs and recover the
//! blobs with the distributed Filter-Borůvka algorithm (the dense-graph
//! specialist).
//!
//! Run with: `cargo run --release --example single_linkage_clustering`

use kamsta::core::seq::UnionFind;
use kamsta::graph::hash::{mix64, unit_f64};
use kamsta::{Algorithm, Runner, WEdge};

const POINTS_PER_BLOB: usize = 120;

fn blobs() -> Vec<(f64, f64)> {
    let centers = [(0.2, 0.2), (0.8, 0.3), (0.5, 0.85)];
    let mut pts = Vec::new();
    for (b, (cx, cy)) in centers.iter().enumerate() {
        for i in 0..POINTS_PER_BLOB {
            let h = mix64((b * POINTS_PER_BLOB + i) as u64);
            let dx = (unit_f64(h) - 0.5) * 0.18;
            let dy = (unit_f64(mix64(h)) - 0.5) * 0.18;
            pts.push((cx + dx, cy + dy));
        }
    }
    pts
}

fn main() {
    let pts = blobs();
    let n = pts.len();

    // Dense-ish neighbourhood graph: connect every pair within range;
    // weights are scaled distances (the heavier, the further apart).
    let mut edges = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
            let d = (dx * dx + dy * dy).sqrt();
            if d < 0.45 {
                let w = (d * 1000.0) as u32 + 1;
                edges.push(WEdge::new(i as u64, j as u64, w));
                edges.push(WEdge::new(j as u64, i as u64, w));
            }
        }
    }
    edges.sort_unstable();
    println!(
        "{n} points, {} directed edges in the proximity graph",
        edges.len()
    );

    // Filter-Borůvka shines on dense inputs: most heavy edges are
    // filtered before they are ever sorted.
    let (msf, summary) = Runner::new(4, 1).msf_edges(edges, Algorithm::FilterBoruvka);
    println!(
        "MST: {} edges, weight {}, modeled {:.4}s; filter removed {} edges",
        summary.msf_edges,
        summary.msf_weight,
        summary.modeled_time,
        summary.filter_stats.map_or(0, |s| s.filtered_edges),
    );

    // k = 3 clusters → delete the 2 heaviest MST edges.
    let k = 3;
    let mut tree = msf.clone();
    tree.sort_unstable_by_key(|e| e.weight_key());
    let kept = &tree[..tree.len() + 1 - k];
    let mut uf = UnionFind::new(n);
    for e in kept {
        uf.union(e.u as u32, e.v as u32);
    }

    // Every blob should map to exactly one cluster.
    let mut cluster_of_blob = Vec::new();
    for b in 0..3 {
        let rep = uf.find((b * POINTS_PER_BLOB) as u32);
        let pure = (0..POINTS_PER_BLOB).all(|i| uf.find((b * POINTS_PER_BLOB + i) as u32) == rep);
        println!("blob {b}: representative {rep}, pure = {pure}");
        assert!(pure, "single linkage must keep each blob together");
        cluster_of_blob.push(rep);
    }
    cluster_of_blob.dedup();
    assert_eq!(cluster_of_blob.len(), 3, "blobs must be separated");
    println!("OK: 3 blobs recovered as 3 single-linkage clusters");
}
