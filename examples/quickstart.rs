//! Quickstart: compute MSTs with every algorithm in the library and
//! verify they agree, on a simulated 8-PE machine.
//!
//! Run with: `cargo run --release --example quickstart`

use kamsta::{verify_msf, Algorithm, GraphConfig, Runner, WEdge};

fn main() {
    // 1. The one-liner: single-node parallel MST of an explicit graph.
    let triangle = vec![
        WEdge::new(0, 1, 4),
        WEdge::new(1, 2, 1),
        WEdge::new(0, 2, 2),
    ];
    let msf = kamsta::minimum_spanning_forest(&triangle);
    println!("single-node MST of a triangle: {msf:?}");
    verify_msf(&triangle, &msf).expect("forest must verify");

    // 2. The distributed algorithms on a simulated 8-PE machine.
    let runner = Runner::new(8, 1);
    let config = GraphConfig::Rgg2D {
        n: 20_000,
        m: 160_000,
    };
    println!("\nrandom geometric graph, ~20k vertices, ~160k directed edges, 8 PEs:");
    println!(
        "{:<18} {:>12} {:>14} {:>12} {:>14}",
        "algorithm", "MSF edges", "MSF weight", "modeled (s)", "edges/s"
    );
    for algo in [
        Algorithm::Boruvka,
        Algorithm::FilterBoruvka,
        Algorithm::SparseMatrix,
        Algorithm::MndMst,
    ] {
        let s = runner.run_generated(config, algo, 42);
        println!(
            "{:<18} {:>12} {:>14} {:>12.4} {:>14.3e}",
            algo.label(),
            s.msf_edges,
            s.msf_weight,
            s.modeled_time,
            s.edges_per_second
        );
    }

    // 3. Hybrid parallelism: the paper's boruvka-8 variant.
    let hybrid = Runner::new(2, 8).run_generated(config, Algorithm::Boruvka, 42);
    println!(
        "\nboruvka-8 (2 PEs × 8 threads): weight {} in {:.4} modeled s",
        hybrid.msf_weight, hybrid.modeled_time
    );
}
