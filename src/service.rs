//! The serving front-end over the batch-dynamic maintainer: a request
//! loop that queues updates, applies them in batches on the simulated
//! machine, and answers forest queries from the cached sharded state
//! without spinning the machine up at all.
//!
//! Batching policy: updates accumulate in a queue and flush either when
//! the queue reaches `max_batch` (amortising the per-batch certificate
//! re-solve over many updates — the knob `dyn_throughput` sweeps) or
//! when a query arrives (queries are strongly consistent: they always
//! observe every previously submitted update). Between flushes the
//! per-PE [`DynShard`]s and the replicated scalars are checkpointed in
//! the service, so consecutive machine runs resume where the last one
//! left off.

use kamsta_comm::{Machine, MachineConfig, MachineError, TransportKind};
use kamsta_dyn::{
    home_of_pair, BatchOutcome, DynConfig, DynMst, DynReplicated, DynShard, Update, UpdateStats,
};
use kamsta_graph::{GraphConfig, InputGraph, VertexId, WEdge};

/// One request to the service loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Request {
    /// Mutate the edge set (queued, applied in batches).
    Update(Update),
    /// Total weight of the current forest.
    MsfWeight,
    /// Number of edges in the current forest.
    MsfEdgeCount,
    /// Is `{u, v}` a forest edge?
    InMsf(VertexId, VertexId),
    /// Force the queued updates through now.
    Flush,
}

/// The service's answer to one [`Request`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Response {
    /// The update was queued (and possibly auto-flushed).
    Queued,
    /// The update referenced a vertex outside `[0, n)` and was dropped
    /// — a malformed client request must not panic the machine.
    Rejected,
    /// Outcome of an explicit flush (`None` when nothing was queued).
    Flushed(Option<BatchOutcome>),
    /// Forest weight.
    Weight(u64),
    /// Forest size.
    Count(u64),
    /// Forest membership.
    Membership(bool),
    /// The service is poisoned by an unrecoverable machine failure and
    /// refuses the request; see [`MstService::poisoned`] for the cause.
    Degraded,
}

/// A failed service operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// This call's machine run failed with a typed error. The service
    /// is now **poisoned**: the batch that failed is dropped, the
    /// cached forest state stays at the last successful flush, and
    /// every subsequent fallible call returns
    /// [`ServiceError::Degraded`] — typed, immediate, never a hang.
    Machine(MachineError),
    /// The service was already poisoned by an earlier failure (carried
    /// inside); the request was refused without spinning up a machine.
    Degraded(MachineError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Machine(e) => write!(f, "machine run failed: {e}"),
            ServiceError::Degraded(e) => {
                write!(f, "service degraded by an earlier failure: {e}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Machine(e) | ServiceError::Degraded(e) => Some(e),
        }
    }
}

/// An MSF service over a simulated machine: owns the sharded dynamic
/// state, batches updates, serves queries from cache.
pub struct MstService {
    machine: MachineConfig,
    cfg: DynConfig,
    shards: Vec<DynShard>,
    rep: DynReplicated,
    queue: Vec<Update>,
    max_batch: usize,
    /// `Some` once a machine run failed unrecoverably: the service is
    /// degraded and refuses further machine work (see [`ServiceError`]).
    poisoned: Option<MachineError>,
}

/// The one construction path for [`MstService`]: a fluent builder whose
/// fallible [`build`](MstServiceBuilder::build) performs all validation
/// and environment resolution (through [`MachineConfig::resolve`]) in
/// one place.
///
/// ```
/// use kamsta::{DynConfig, MstService, TransportKind};
///
/// let svc = MstService::builder(4, DynConfig::new(64))
///     .transport(TransportKind::Bytes)
///     .max_batch(16)
///     .build()
///     .unwrap();
/// assert_eq!(svc.pending(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct MstServiceBuilder {
    pes: usize,
    cfg: DynConfig,
    machine: Option<MachineConfig>,
    transport: Option<TransportKind>,
    max_batch: usize,
}

impl MstServiceBuilder {
    /// Use a full machine configuration (all-to-all strategy, cost
    /// model, transport). Its PE count must match the builder's.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.machine = Some(machine);
        self
    }

    /// Pin the communication transport, overriding both the machine
    /// config and `KAMSTA_TRANSPORT`.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Auto-flush threshold (default 64 queued updates; clamped to 1).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Validate and construct the service. A changed PE count, zero
    /// PEs, an unknown `KAMSTA_TRANSPORT`, or a bad socket setup all
    /// come back as typed [`MachineError`]s instead of poisoning a PE
    /// thread on the first flush.
    pub fn build(self) -> Result<MstService, MachineError> {
        let mut machine = self.machine.unwrap_or_else(|| MachineConfig::new(self.pes));
        if machine.pes != self.pes {
            return Err(MachineError::PeCountMismatch {
                expected: self.pes,
                got: machine.pes,
            });
        }
        if let Some(t) = self.transport {
            machine = machine.with_transport(t);
        }
        // Pin the env-resolved transport so the validation is durable: a
        // KAMSTA_TRANSPORT change after construction must not poison a
        // later auto-flush.
        machine.transport = Some(machine.resolve()?.transport);
        Ok(MstService {
            machine,
            cfg: self.cfg,
            shards: vec![DynShard::default(); self.pes],
            rep: DynReplicated::default(),
            queue: Vec::new(),
            max_batch: self.max_batch,
            poisoned: None,
        })
    }
}

impl MstService {
    /// Start building a service over `[0, cfg.n)` on a `pes`-PE machine
    /// — the single construction path; see [`MstServiceBuilder`].
    pub fn builder(pes: usize, cfg: DynConfig) -> MstServiceBuilder {
        MstServiceBuilder {
            pes,
            cfg,
            machine: None,
            transport: None,
            max_batch: 64,
        }
    }

    /// An empty service over `[0, cfg.n)` on a `pes`-PE machine.
    ///
    /// # Panics
    ///
    /// Panics on an invalid machine configuration.
    #[deprecated(since = "0.1.0", note = "use MstService::builder(pes, cfg).build()")]
    pub fn new(pes: usize, cfg: DynConfig) -> Self {
        Self::builder(pes, cfg)
            .build()
            .unwrap_or_else(|e| panic!("invalid machine config: {e}"))
    }

    /// Fallible [`MstService::new`].
    #[deprecated(since = "0.1.0", note = "use MstService::builder(pes, cfg).build()")]
    pub fn try_new(pes: usize, cfg: DynConfig) -> Result<Self, MachineError> {
        Self::builder(pes, cfg).build()
    }

    /// Override the auto-flush threshold (default 64 queued updates).
    #[deprecated(since = "0.1.0", note = "use MstService::builder(..).max_batch(n)")]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Override the machine configuration; the PE count must stay at
    /// the constructed value.
    ///
    /// # Panics
    ///
    /// Panics on an invalid machine configuration.
    #[deprecated(since = "0.1.0", note = "use MstService::builder(..).machine(m)")]
    pub fn with_machine(self, machine: MachineConfig) -> Self {
        #[allow(deprecated)]
        self.try_with_machine(machine)
            .unwrap_or_else(|e| panic!("invalid machine config: {e}"))
    }

    /// Fallible [`MstService::with_machine`].
    #[deprecated(since = "0.1.0", note = "use MstService::builder(..).machine(m)")]
    pub fn try_with_machine(self, machine: MachineConfig) -> Result<Self, MachineError> {
        let rebuilt = MstService::builder(self.shards.len(), self.cfg)
            .machine(machine)
            .max_batch(self.max_batch)
            .build()?;
        Ok(Self {
            machine: rebuilt.machine,
            ..self
        })
    }

    /// The failure that poisoned this service, when one occurred. A
    /// poisoned service still answers [`MstService::stats`] and
    /// [`MstService::pending`], but refuses everything that would spin
    /// up the machine or read possibly-stale forest state.
    pub fn poisoned(&self) -> Option<&MachineError> {
        self.poisoned.as_ref()
    }

    /// Gate for every fallible operation: a poisoned service answers
    /// with a typed degradation error immediately.
    fn check_poisoned(&self) -> Result<(), ServiceError> {
        match &self.poisoned {
            Some(e) => Err(ServiceError::Degraded(e.clone())),
            None => Ok(()),
        }
    }

    /// Record an unrecoverable machine failure: the service degrades
    /// (state frozen at the last successful flush) and the error is
    /// surfaced typed, now and on every later call.
    fn poison(&mut self, e: MachineError) -> ServiceError {
        self.poisoned = Some(e.clone());
        ServiceError::Machine(e)
    }

    /// Replace the edge set by a generated family and solve its MSF once
    /// through the static pipeline (dropping any queued updates).
    ///
    /// # Panics
    ///
    /// Panics on a machine failure; see
    /// [`MstService::try_load_generated`] for the typed variant.
    pub fn load_generated(&mut self, config: GraphConfig, seed: u64) {
        self.try_load_generated(config, seed)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`MstService::load_generated`]: an unrecoverable
    /// transport failure degrades the service instead of panicking.
    pub fn try_load_generated(
        &mut self,
        config: GraphConfig,
        seed: u64,
    ) -> Result<(), ServiceError> {
        self.check_poisoned()?;
        let cfg = self.cfg;
        let out = Machine::try_run(self.machine.clone(), move |comm| {
            let input = InputGraph::generate(comm, config, seed);
            DynMst::bootstrap(comm, cfg, &input).into_parts()
        })
        .map_err(|e| self.poison(e))?;
        self.queue.clear();
        self.install(out.results);
        Ok(())
    }

    /// True if every endpoint of the update lies in the configured
    /// vertex space `[0, n)`.
    pub fn in_range(&self, up: &Update) -> bool {
        let (u, v) = match *up {
            Update::Insert(e) => (e.u, e.v),
            Update::Delete { u, v } => (u, v),
        };
        u < self.cfg.n && v < self.cfg.n
    }

    /// Queue one update; flush automatically at the batch threshold.
    /// Returns the flush outcome when one ran. Out-of-range updates
    /// are dropped (see [`Self::handle`] for the reporting variant) —
    /// the maintainer would otherwise panic the whole machine
    /// mid-flush on a malformed client request.
    ///
    /// # Panics
    ///
    /// Panics on a machine failure; see [`MstService::try_submit`].
    pub fn submit(&mut self, up: Update) -> Option<BatchOutcome> {
        self.try_submit(up).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MstService::submit`]: a degraded service refuses the
    /// update, and an auto-flush failure degrades the service.
    pub fn try_submit(&mut self, up: Update) -> Result<Option<BatchOutcome>, ServiceError> {
        self.check_poisoned()?;
        if !self.in_range(&up) {
            return Ok(None);
        }
        self.queue.push(up);
        if self.queue.len() >= self.max_batch {
            self.try_flush()
        } else {
            Ok(None)
        }
    }

    /// Apply every queued update as one batch. `None` when the queue was
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics on a machine failure; see [`MstService::try_flush`].
    pub fn flush(&mut self) -> Option<BatchOutcome> {
        self.try_flush().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MstService::flush`]: an unrecoverable transport
    /// failure poisons the service — the failing batch is dropped, the
    /// cached forest stays at the last successful flush, and every
    /// later fallible call answers [`ServiceError::Degraded`]
    /// immediately instead of panicking or blocking on a dead machine.
    pub fn try_flush(&mut self) -> Result<Option<BatchOutcome>, ServiceError> {
        self.check_poisoned()?;
        if self.queue.is_empty() {
            return Ok(None);
        }
        let batch = std::mem::take(&mut self.queue);
        let (cfg, rep) = (self.cfg, self.rep);
        let shards = &self.shards;
        let machine = self.machine.clone();
        let out = Machine::try_run(machine, move |comm| {
            let shard = shards[comm.rank()].clone();
            let mut dynmst = DynMst::from_parts(comm, cfg, shard, rep);
            let slice: &[Update] = if comm.rank() == 0 { &batch } else { &[] };
            let outcome = dynmst.apply_batch(comm, slice);
            let (shard, rep) = dynmst.into_parts();
            (shard, rep, outcome)
        })
        .map_err(|e| self.poison(e))?;
        let outcome = out.results[0].2;
        self.install(out.results.into_iter().map(|(s, r, _)| (s, r)).collect());
        Ok(Some(outcome))
    }

    /// Forest weight (flushes pending updates first).
    ///
    /// # Panics
    ///
    /// Panics on a machine failure; see [`MstService::try_msf_weight`].
    pub fn msf_weight(&mut self) -> u64 {
        self.try_msf_weight().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MstService::msf_weight`].
    pub fn try_msf_weight(&mut self) -> Result<u64, ServiceError> {
        self.try_flush()?;
        Ok(self.rep.weight)
    }

    /// Forest size (flushes pending updates first).
    ///
    /// # Panics
    ///
    /// Panics on a machine failure; see
    /// [`MstService::try_msf_edge_count`].
    pub fn msf_edge_count(&mut self) -> u64 {
        self.try_msf_edge_count().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MstService::msf_edge_count`].
    pub fn try_msf_edge_count(&mut self) -> Result<u64, ServiceError> {
        self.try_flush()?;
        Ok(self.rep.msf_edges)
    }

    /// Forest membership of `{u, v}`, answered by a binary search on the
    /// pair's home shard — no machine run (flushes pending updates
    /// first).
    ///
    /// # Panics
    ///
    /// Panics on a machine failure; see [`MstService::try_in_msf`].
    pub fn in_msf(&mut self, u: VertexId, v: VertexId) -> bool {
        self.try_in_msf(u, v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MstService::in_msf`].
    pub fn try_in_msf(&mut self, u: VertexId, v: VertexId) -> Result<bool, ServiceError> {
        self.try_flush()?;
        if u == v || u >= self.cfg.n || v >= self.cfg.n {
            return Ok(false);
        }
        let (a, b) = (u.min(v), u.max(v));
        let shard = &self.shards[home_of_pair(self.cfg.n, self.shards.len(), a, b)];
        Ok(shard
            .msf
            .binary_search_by(|e| (e.u, e.v).cmp(&(a, b)))
            .is_ok())
    }

    /// The full forest as a canonical sorted edge list (flushes first).
    ///
    /// # Panics
    ///
    /// Panics on a machine failure; see [`MstService::try_msf_edges`].
    pub fn msf_edges(&mut self) -> Vec<WEdge> {
        self.try_msf_edges().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MstService::msf_edges`].
    pub fn try_msf_edges(&mut self) -> Result<Vec<WEdge>, ServiceError> {
        self.try_flush()?;
        let mut out: Vec<WEdge> = self
            .shards
            .iter()
            .flat_map(|s| s.msf.iter().map(|e| e.wedge()))
            .collect();
        out.sort_unstable();
        Ok(out)
    }

    /// Lifetime update statistics (does not flush).
    pub fn stats(&self) -> UpdateStats {
        self.rep.stats
    }

    /// Number of queued, not yet applied updates.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Serve one request. A machine failure (or an already-degraded
    /// service) answers [`Response::Degraded`] — the loop keeps serving,
    /// every request gets a typed answer, nothing panics or blocks.
    pub fn handle(&mut self, req: Request) -> Response {
        let served = match req {
            Request::Update(up) => {
                if !self.in_range(&up) {
                    return Response::Rejected;
                }
                self.try_submit(up).map(|_| Response::Queued)
            }
            Request::Flush => self.try_flush().map(Response::Flushed),
            Request::MsfWeight => self.try_msf_weight().map(Response::Weight),
            Request::MsfEdgeCount => self.try_msf_edge_count().map(Response::Count),
            Request::InMsf(u, v) => self.try_in_msf(u, v).map(Response::Membership),
        };
        served.unwrap_or(Response::Degraded)
    }

    /// The request loop: serve a whole script of requests in order.
    pub fn run_loop(&mut self, requests: impl IntoIterator<Item = Request>) -> Vec<Response> {
        requests.into_iter().map(|r| self.handle(r)).collect()
    }

    fn install(&mut self, results: Vec<(DynShard, DynReplicated)>) {
        self.rep = results[0].1;
        self.shards = results.into_iter().map(|(s, _)| s).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_core::dist::MstConfig;

    fn dyn_cfg(n: u64) -> DynConfig {
        DynConfig::new(n).with_mst(MstConfig {
            base_case_constant: 8,
            filter_min_edges_per_pe: 16,
            ..MstConfig::default()
        })
    }

    fn service(pes: usize, n: u64, max_batch: usize) -> MstService {
        MstService::builder(pes, dyn_cfg(n))
            .max_batch(max_batch)
            .build()
            .unwrap()
    }

    #[test]
    fn queries_flush_the_queue_first() {
        let mut s = service(3, 8, 100);
        s.submit(Update::Insert(WEdge::new(0, 1, 3)));
        s.submit(Update::Insert(WEdge::new(1, 2, 4)));
        assert_eq!(s.pending(), 2);
        assert_eq!(s.msf_weight(), 7, "read-your-writes");
        assert_eq!(s.pending(), 0);
        assert!(s.in_msf(1, 0) && s.in_msf(2, 1));
        assert!(!s.in_msf(0, 2) && !s.in_msf(5, 5));
    }

    #[test]
    fn auto_flush_at_the_batch_threshold() {
        let mut s = service(2, 16, 4);
        for k in 0..3u64 {
            assert!(s.submit(Update::Insert(WEdge::new(k, k + 1, 1))).is_none());
        }
        let outcome = s.submit(Update::Insert(WEdge::new(3, 4, 1)));
        assert!(outcome.is_some(), "4th update crosses the threshold");
        assert_eq!(s.pending(), 0);
        assert_eq!(outcome.unwrap().msf_edges, 4);
        assert_eq!(s.stats().batches, 1);
    }

    #[test]
    fn request_loop_serves_a_script() {
        let mut s = service(2, 6, 50);
        let responses = s.run_loop([
            Request::Update(Update::Insert(WEdge::new(0, 1, 2))),
            Request::Update(Update::Insert(WEdge::new(1, 2, 3))),
            Request::Update(Update::Insert(WEdge::new(0, 2, 9))),
            Request::MsfWeight,
            Request::InMsf(0, 2),
            Request::Update(Update::Delete { u: 1, v: 2 }),
            Request::MsfWeight,
            Request::InMsf(0, 2),
            Request::MsfEdgeCount,
            Request::Flush,
        ]);
        assert_eq!(
            responses,
            vec![
                Response::Queued,
                Response::Queued,
                Response::Queued,
                Response::Weight(5),
                Response::Membership(false),
                Response::Queued,
                Response::Weight(11), // 0-2 replaces the deleted 1-2
                Response::Membership(true),
                Response::Count(2),
                Response::Flushed(None),
            ]
        );
    }

    #[test]
    fn out_of_range_updates_are_rejected_not_fatal() {
        let mut s = service(2, 8, 2);
        assert_eq!(
            s.handle(Request::Update(Update::Insert(WEdge::new(0, 99, 1)))),
            Response::Rejected
        );
        assert!(s.submit(Update::Delete { u: 99, v: 0 }).is_none());
        assert_eq!(s.pending(), 0, "rejected updates never enter the queue");
        s.submit(Update::Insert(WEdge::new(0, 7, 3)));
        assert_eq!(s.msf_weight(), 3, "the service keeps serving");
    }

    #[test]
    fn zero_pe_config_is_rejected_not_a_thread_poison() {
        let cfg = DynConfig::new(8);
        let Err(err) = MstService::builder(0, cfg).build() else {
            panic!("zero PEs must be rejected");
        };
        assert_eq!(err, kamsta_comm::MachineError::NoPes);
        // And a PE-count change through the builder is typed too.
        assert!(matches!(
            MstService::builder(2, cfg)
                .machine(MachineConfig::new(3))
                .build(),
            Err(kamsta_comm::MachineError::PeCountMismatch {
                expected: 2,
                got: 3
            })
        ));
    }

    #[test]
    fn builder_pins_transport_and_machine_settings() {
        // An explicit transport survives into the machine config...
        let svc = MstService::builder(2, dyn_cfg(8))
            .transport(TransportKind::Bytes)
            .build()
            .unwrap();
        assert_eq!(svc.machine.transport, Some(TransportKind::Bytes));
        // ...and wins over the one in a full machine config.
        let svc = MstService::builder(2, dyn_cfg(8))
            .machine(MachineConfig::new(2).with_transport(TransportKind::Cells))
            .transport(TransportKind::Bytes)
            .build()
            .unwrap();
        assert_eq!(svc.machine.transport, Some(TransportKind::Bytes));
        // A service over the socket transport serves like any other.
        let mut s = MstService::builder(2, dyn_cfg(8))
            .transport(TransportKind::Sockets)
            .max_batch(2)
            .build()
            .unwrap();
        s.submit(Update::Insert(WEdge::new(0, 1, 3)));
        s.submit(Update::Insert(WEdge::new(1, 2, 4)));
        assert_eq!(s.msf_weight(), 7);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_shims_still_work() {
        // The old five-constructor surface delegates to the builder.
        let mut s = MstService::new(2, dyn_cfg(8)).with_max_batch(2);
        s.submit(Update::Insert(WEdge::new(0, 1, 5)));
        s.submit(Update::Insert(WEdge::new(1, 2, 2)));
        assert_eq!(s.msf_weight(), 7);
        let s = MstService::try_new(2, dyn_cfg(8)).unwrap();
        let s = s
            .try_with_machine(MachineConfig::new(2).with_transport(TransportKind::Bytes))
            .unwrap();
        assert_eq!(s.machine.transport, Some(TransportKind::Bytes));
        let s = s.with_machine(MachineConfig::new(2));
        assert!(s.machine.transport.is_some(), "resolved transport pinned");
        assert!(matches!(
            MstService::try_new(0, dyn_cfg(8)),
            Err(kamsta_comm::MachineError::NoPes)
        ));
    }

    #[test]
    fn generated_load_then_updates() {
        let mut s = service(4, 64, 64);
        s.load_generated(GraphConfig::Grid2D { rows: 8, cols: 8 }, 5);
        assert_eq!(s.msf_edge_count(), 63, "spanning tree of the grid");
        let before = s.msf_weight();
        // Insert a zero-ish weight shortcut: must enter the forest.
        s.submit(Update::Insert(WEdge::new(0, 63, 1)));
        assert!(s.in_msf(0, 63));
        assert!(s.msf_weight() < before + 1);
        assert_eq!(s.msf_edge_count(), 63, "still spanning, one cycle broken");
    }
}
