//! # kamsta — Engineering Massively Parallel MST Algorithms
//!
//! A complete Rust reproduction of Sanders & Schimek, *Engineering
//! Massively Parallel MST Algorithms* (IPDPS 2023): the scalable
//! distributed Borůvka algorithm, the Filter-Borůvka algorithm, the
//! communication substrate, the graph generators, and the competitor
//! baselines of the paper's evaluation — all running on a simulated
//! distributed-memory machine with an α-β-γ cost model (see `DESIGN.md`).
//!
//! ## Quick start
//!
//! ```
//! use kamsta::{Algorithm, GraphConfig, Runner};
//!
//! // A 4-PE machine computing the MST of a 32×32 grid graph.
//! let runner = Runner::new(4, 1);
//! let summary = runner.run_generated(
//!     GraphConfig::Grid2D { rows: 32, cols: 32 },
//!     Algorithm::Boruvka,
//!     42,
//! );
//! assert_eq!(summary.msf_edges, 32 * 32 - 1); // spanning tree
//! assert!(summary.modeled_time > 0.0);
//! ```
//!
//! The crates compose as follows:
//!
//! | crate | contents |
//! |---|---|
//! | [`comm`] | SPMD runtime, collectives, two-level all-to-all, cost model |
//! | [`sort`] | hypercube quicksort + AMS-style sample sort |
//! | [`graph`] | distributed edge lists, generators, varint codec, IO |
//! | [`core`] | distributed Borůvka + Filter-Borůvka, references, verifier |
//! | [`dynamic`] | batch-dynamic MSF maintenance (certificate re-solves) |
//! | [`baselines`] | sparseMatrix and MND-MST competitor analogues |
//!
//! On top, [`MstService`] serves forest queries over a mutating edge
//! set: updates queue, apply in batches through [`DynMst`], and queries
//! answer from the cached sharded state.

pub use kamsta_baselines as baselines;
pub use kamsta_comm as comm;
pub use kamsta_core as core;
pub use kamsta_dyn as dynamic;
pub use kamsta_graph as graph;
pub use kamsta_sort as sort;

pub mod launchprog;
mod runner;
mod service;

pub use kamsta_comm::{
    AlltoallKind, CostModel, FaultPlan, LethalFault, LethalKind, Machine, MachineConfig,
    MachineError, TransportError, TransportKind,
};
pub use kamsta_core::dist::{DedupStrategy, MstConfig};
pub use kamsta_core::{verify_msf, Phase, PhaseTimes, WallStats};
pub use kamsta_dyn::{DynConfig, DynMst, Update, UpdateStats};
pub use kamsta_graph::{GraphConfig, InputGraph, WEdge};
pub use runner::{Algorithm, RunSummary, Runner};
pub use service::{MstService, MstServiceBuilder, Request, Response, ServiceError};

/// Convenience: single-node minimum spanning forest of an edge list
/// (undirected or symmetric directed), via the shared-memory parallel
/// Borůvka. Each MSF edge is reported once.
///
/// ```
/// use kamsta::{minimum_spanning_forest, WEdge};
/// let edges = vec![
///     WEdge::new(0, 1, 4),
///     WEdge::new(1, 2, 1),
///     WEdge::new(0, 2, 2),
/// ];
/// let msf = minimum_spanning_forest(&edges);
/// assert_eq!(msf.iter().map(|e| e.w as u64).sum::<u64>(), 3);
/// ```
pub fn minimum_spanning_forest(edges: &[WEdge]) -> Vec<WEdge> {
    kamsta_core::shared::par_boruvka(edges)
}
