//! High-level experiment runner: configure a simulated machine, pick an
//! algorithm, get verified results plus the modeled-cost metrics the
//! benchmark harness reports.

use kamsta_baselines::{mnd_mst, sparse_matrix, MndConfig};
use kamsta_comm::{AlltoallKind, CostModel, FaultPlan, Machine, MachineConfig, TransportKind};
use kamsta_core::dist::{boruvka_mst, filter_mst, FilterStats, MstConfig};
use kamsta_core::{PhaseTimes, WallStats};
use kamsta_graph::{GraphConfig, InputGraph, WEdge};
use std::time::Instant;

/// The algorithms of the paper's evaluation (Fig. 3/5 series).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Distributed Borůvka (Algorithm 1) — the paper's `boruvka`.
    Boruvka,
    /// Filter-Borůvka (Algorithm 2) — the paper's `filterBoruvka`.
    FilterBoruvka,
    /// `boruvka` with local preprocessing disabled (Fig. 4 ablation).
    BoruvkaNoPreprocessing,
    /// The sparse-matrix Awerbuch–Shiloach competitor \[37\].
    SparseMatrix,
    /// The MND-MST competitor \[19\].
    MndMst,
}

impl Algorithm {
    /// Series label as used in the paper's figures (suffix `-t` added by
    /// the harness for the thread count).
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Boruvka => "boruvka",
            Algorithm::FilterBoruvka => "filterBoruvka",
            Algorithm::BoruvkaNoPreprocessing => "boruvka-noprep",
            Algorithm::SparseMatrix => "sparseMatrix",
            Algorithm::MndMst => "MND-MST",
        }
    }
}

/// Metrics of one run, aggregated over PEs. The modeled counters cover
/// the **MST computation only** — input generation and preparation
/// (including the pair-id canonicalisation exchange) are excluded, as
/// in the paper's measurements, which time the algorithms on prepared
/// KaGen inputs.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Number of undirected MSF edges found.
    pub msf_edges: u64,
    /// Total MSF weight (the correctness invariant across algorithms).
    pub msf_weight: u64,
    /// Directed edges of the input graph.
    pub input_edges: u64,
    /// Vertices of the input graph.
    pub input_vertices: u64,
    /// BSP completion time of the algorithm under the α-β-γ model,
    /// seconds.
    pub modeled_time: f64,
    /// Wall-clock seconds of the whole simulation, including input
    /// generation (indicative only).
    pub wall_time: f64,
    /// Modeled throughput: input edges per modeled second — the y-axis
    /// of the paper's Fig. 3.
    pub edges_per_second: f64,
    /// Total messages across PEs.
    pub messages: u64,
    /// Total bytes across PEs.
    pub bytes: u64,
    /// Bottleneck per-phase profile (Fig. 6), when the algorithm reports
    /// one.
    pub phases: Option<PhaseTimes>,
    /// Filter-Borůvka statistics (Theorem 1 experiment), when available.
    pub filter_stats: Option<FilterStats>,
    /// Bottleneck wall-clock breakdown of the whole simulation by scope
    /// (generate / prepare / solve / redistribute) — the wall-side
    /// mirror of the algorithm-scoped modeled counters, so wall-time
    /// cliffs outside the modeled window are visible per run.
    pub wall_stats: WallStats,
}

impl RunSummary {
    /// Wall/modeled divergence ratio: how many wall seconds the whole
    /// simulation burns per modeled second of the algorithm. Large
    /// jumps mean the wall time went somewhere the cost model does not
    /// charge — a generator cliff, load imbalance, host contention.
    pub fn wall_modeled_divergence(&self) -> f64 {
        self.wall_time / self.modeled_time.max(f64::MIN_POSITIVE)
    }
}

/// A configured simulated machine plus algorithm parameters.
#[derive(Clone, Debug)]
pub struct Runner {
    pub machine: MachineConfig,
    pub mst: MstConfig,
}

impl Runner {
    /// `pes` PEs with `threads` hybrid threads each (the paper's
    /// `algorithm-t` naming: total cores = pes × threads).
    pub fn new(pes: usize, threads: usize) -> Self {
        Self {
            machine: MachineConfig::new(pes).with_threads(threads),
            mst: MstConfig::default(),
        }
    }

    /// Override the all-to-all strategy (Fig. 2 ablation).
    pub fn with_alltoall(mut self, kind: AlltoallKind) -> Self {
        self.machine = self.machine.with_alltoall(kind);
        self
    }

    /// Pin the communication transport (overrides `KAMSTA_TRANSPORT`).
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.machine = self.machine.with_transport(transport);
        self
    }

    /// Override the machine cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.machine = self.machine.with_cost(cost);
        self
    }

    /// Arm deterministic transport fault injection for every run
    /// (overrides `KAMSTA_FAULTS`). Transient plans must not change any
    /// result or modeled counter; see `kamsta_comm::FaultPlan`.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.machine = self.machine.with_faults(plan);
        self
    }

    /// Override the MST algorithm configuration.
    pub fn with_mst_config(mut self, cfg: MstConfig) -> Self {
        self.mst = cfg;
        self
    }

    /// Generate one of the paper's graph families on the machine and run
    /// `algo` on it.
    pub fn run_generated(&self, config: GraphConfig, algo: Algorithm, seed: u64) -> RunSummary {
        self.run_with(algo, move |comm| config.generate(comm, seed))
    }

    /// Run `algo` on an explicit edge list (held replicated by the
    /// caller; it is distributed internally — the distribution wall is
    /// reported under the `generate` scope).
    pub fn run_edges(&self, edges: Vec<WEdge>, algo: Algorithm) -> RunSummary {
        self.run_with(algo, move |comm| {
            kamsta_graph::io::distribute_from_root(comm, (comm.rank() == 0).then(|| edges.clone()))
        })
    }

    /// Compute the MSF of an explicit edge list, returning the edges
    /// (one direction per undirected MSF edge) alongside the metrics.
    pub fn msf_edges(&self, edges: Vec<WEdge>, algo: Algorithm) -> (Vec<WEdge>, RunSummary) {
        let mst_cfg = self.effective_cfg(algo);
        let out = Machine::run(self.machine.clone(), move |comm| {
            let t = Instant::now();
            let slice = kamsta_graph::io::distribute_from_root(
                comm,
                (comm.rank() == 0).then(|| edges.clone()),
            );
            let generate = t.elapsed().as_secs_f64();
            prepared_run(comm, slice, generate, algo, &mst_cfg)
        });
        let mut msf = Vec::new();
        for pe in &out.results {
            msf.extend(pe.msf.iter().copied());
        }
        let summary = summarize(&out);
        (msf, summary)
    }

    fn effective_cfg(&self, algo: Algorithm) -> MstConfig {
        match algo {
            Algorithm::BoruvkaNoPreprocessing => self.mst.without_preprocessing(),
            _ => self.mst,
        }
    }

    fn run_with<F>(&self, algo: Algorithm, make_edges: F) -> RunSummary
    where
        F: Fn(&kamsta_comm::Comm) -> Vec<WEdge> + Send + Sync,
    {
        let mst_cfg = self.effective_cfg(algo);
        let out = Machine::run(self.machine.clone(), move |comm| {
            let t = Instant::now();
            let edges = make_edges(comm);
            let generate = t.elapsed().as_secs_f64();
            prepared_run(comm, edges, generate, algo, &mst_cfg)
        });
        summarize(&out)
    }
}

/// Prepare this PE's edge slice and solve, measuring the wall-side
/// scope breakdown (generate / prepare / solve / redistribute)
/// alongside the algorithm-scoped modeled counters, bottleneck-reduced
/// across PEs. The redistribution wall comes from the algorithm's
/// bottleneck phase profile, so `solve` is clamped at ≥ 0. Collective.
fn prepared_run(
    comm: &kamsta_comm::Comm,
    edges: Vec<WEdge>,
    generate: f64,
    algo: Algorithm,
    cfg: &MstConfig,
) -> PeRun {
    let t = Instant::now();
    let input = InputGraph::from_sorted_edges(comm, edges);
    let prepare = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut run = run_algorithm(comm, &input, algo, cfg);
    let algo_wall = t.elapsed().as_secs_f64();
    let redistribute = run
        .phases
        .as_ref()
        .map_or(0.0, PhaseTimes::redistribution_wall)
        .min(algo_wall);
    let mine = WallStats {
        generate,
        prepare,
        solve: (algo_wall - redistribute).max(0.0),
        redistribute,
    };
    run.wall_stats = WallStats::reduce_max(comm, &mine);
    run
}

/// Per-PE result of one algorithm run.
pub(crate) struct PeRun {
    msf: Vec<WEdge>,
    input_edges: u64,
    input_vertices: u64,
    /// This PE's modeled cost of the algorithm phase alone.
    algo_stats: kamsta_comm::PeStats,
    phases: Option<PhaseTimes>,
    filter_stats: Option<FilterStats>,
    /// Filled by [`prepared_run`] after the solve completes.
    wall_stats: WallStats,
}

fn run_algorithm(
    comm: &kamsta_comm::Comm,
    input: &InputGraph,
    algo: Algorithm,
    cfg: &MstConfig,
) -> PeRun {
    // Input preparation is done; measure the algorithm phase alone
    // (the collectives ending preparation leave the clocks synced).
    let before = comm.stats();
    let (msf, phases, filter_stats) = match algo {
        Algorithm::Boruvka | Algorithm::BoruvkaNoPreprocessing => {
            let r = boruvka_mst(comm, input, cfg);
            let msf: Vec<WEdge> = r.edges.iter().map(|e| e.wedge()).collect();
            (msf, Some(PhaseTimes::reduce_max(comm, &r.phases)), None)
        }
        Algorithm::FilterBoruvka => {
            let (r, stats) = filter_mst(comm, input, cfg);
            let msf: Vec<WEdge> = r.edges.iter().map(|e| e.wedge()).collect();
            (
                msf,
                Some(PhaseTimes::reduce_max(comm, &r.phases)),
                Some(stats),
            )
        }
        Algorithm::SparseMatrix => {
            let msf = sparse_matrix(comm, &input.graph.edges);
            (msf, None, None)
        }
        Algorithm::MndMst => {
            let msf = mnd_mst(comm, &input.graph.edges, &MndConfig::default());
            (msf, None, None)
        }
    };
    PeRun {
        msf,
        input_edges: input.graph.m_global,
        input_vertices: input.graph.n_global,
        algo_stats: comm.stats().since(&before),
        phases,
        filter_stats,
        wall_stats: WallStats::default(),
    }
}

fn summarize(out: &kamsta_comm::RunOutput<PeRun>) -> RunSummary {
    let msf_edges: u64 = out.results.iter().map(|r| r.msf.len() as u64).sum();
    let msf_weight: u64 = out
        .results
        .iter()
        .flat_map(|r| r.msf.iter())
        .map(|e| e.w as u64)
        .sum();
    let input_edges = out.results[0].input_edges;
    let input_vertices = out.results[0].input_vertices;
    // Algorithm-phase aggregates (BSP: bottleneck PE decides the time).
    let modeled_time = out
        .results
        .iter()
        .map(|r| r.algo_stats.modeled_time)
        .fold(0.0, f64::max);
    let modeled = modeled_time.max(f64::MIN_POSITIVE);
    RunSummary {
        msf_edges,
        msf_weight,
        input_edges,
        input_vertices,
        modeled_time,
        wall_time: out.wall.as_secs_f64(),
        edges_per_second: input_edges as f64 / modeled,
        messages: out.results.iter().map(|r| r.algo_stats.messages).sum(),
        bytes: out.results.iter().map(|r| r.algo_stats.bytes).sum(),
        phases: out.results[0].phases.clone(),
        filter_stats: out.results[0].filter_stats,
        // Already bottleneck-reduced across PEs, so any rank's copy is
        // the machine-wide profile.
        wall_stats: out.results[0].wall_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_agree_on_weight() {
        let config = GraphConfig::Grid2D { rows: 12, cols: 12 };
        let runner = Runner::new(4, 1).with_mst_config(MstConfig {
            base_case_constant: 16,
            ..MstConfig::default()
        });
        let algos = [
            Algorithm::Boruvka,
            Algorithm::FilterBoruvka,
            Algorithm::BoruvkaNoPreprocessing,
            Algorithm::SparseMatrix,
            Algorithm::MndMst,
        ];
        let summaries: Vec<RunSummary> = algos
            .iter()
            .map(|a| runner.run_generated(config, *a, 7))
            .collect();
        let w0 = summaries[0].msf_weight;
        for (a, s) in algos.iter().zip(&summaries) {
            assert_eq!(s.msf_weight, w0, "{a:?} weight mismatch");
            assert_eq!(s.msf_edges, 12 * 12 - 1, "{a:?} edge count");
            assert!(s.modeled_time > 0.0);
            assert!(s.edges_per_second > 0.0);
        }
    }

    #[test]
    fn hybrid_threads_dont_change_the_forest() {
        let config = GraphConfig::Rgg2D { n: 300, m: 2400 };
        let a = Runner::new(4, 1).run_generated(config, Algorithm::Boruvka, 3);
        let b = Runner::new(4, 8).run_generated(config, Algorithm::Boruvka, 3);
        assert_eq!(a.msf_weight, b.msf_weight);
        assert_eq!(a.msf_edges, b.msf_edges);
    }

    #[test]
    fn armed_transient_faults_dont_change_the_summary() {
        let config = GraphConfig::Grid2D { rows: 10, cols: 10 };
        let plain = Runner::new(4, 1).run_generated(config, Algorithm::Boruvka, 7);
        let noisy = Runner::new(4, 1)
            .with_transport(TransportKind::Bytes)
            .with_faults(
                FaultPlan::seeded(3)
                    .with_short_writes(0.4)
                    .with_short_reads(0.4)
                    .with_duplicates(0.3)
                    .with_retries(0.3),
            )
            .run_generated(config, Algorithm::Boruvka, 7);
        assert_eq!(plain.msf_weight, noisy.msf_weight);
        assert_eq!(plain.msf_edges, noisy.msf_edges);
        assert_eq!(plain.messages, noisy.messages);
        assert_eq!(plain.bytes, noisy.bytes);
        assert_eq!(plain.modeled_time, noisy.modeled_time);
    }

    #[test]
    fn msf_edges_returns_verified_forest() {
        let edges = [
            WEdge::new(0, 1, 3),
            WEdge::new(1, 2, 1),
            WEdge::new(2, 0, 2),
            WEdge::new(2, 3, 5),
        ];
        let sym: Vec<WEdge> = edges.iter().flat_map(|e| [*e, e.reversed()]).collect();
        let (msf, summary) = Runner::new(2, 1).msf_edges(sym.clone(), Algorithm::Boruvka);
        kamsta_core::verify_msf(&sym, &msf).unwrap();
        assert_eq!(summary.msf_weight, 1 + 2 + 5);
    }
}
