//! Rank programs for the multi-process launcher (`kamsta_launch`).
//!
//! Each program is an SPMD function every rank runs against its [`Comm`]
//! handle; rank 0 returns a one-line JSON digest, every other rank
//! returns `None`. The digests fold in the machine-wide modeled cost
//! counters (messages, bytes, modeled-clock bits), so comparing a
//! digest produced across real OS processes over sockets against the
//! same program run in-process on the cells transport checks results
//! *and* bit-identical cost accounting in one string equality — the
//! launcher integration tests do exactly that.
//!
//! The counters are snapshotted **before** the digest-gathering
//! collectives run: those collectives are part of the harness, not the
//! program, and charging them would make the digest depend on how it is
//! collected.

use kamsta_comm::{Comm, FlatBuckets};
use kamsta_core::dist::{boruvka_mst, MstConfig};
use kamsta_dyn::{DynConfig, DynMst, Update};
use kamsta_graph::{GraphConfig, InputGraph, WEdge};

/// Run the named program; rank 0 gets `Some(json_digest)`.
///
/// Programs: `sum` (mixed collectives), `mst` (generate + Borůvka),
/// `dyn` (batch-dynamic maintenance), `die` (one rank exits the OS
/// process mid-run — launcher-only, it would take the whole in-process
/// machine down).
///
/// # Panics
///
/// Panics on an unknown program name.
pub fn run(name: &str, comm: &Comm, seed: u64) -> Option<String> {
    match name {
        "sum" => prog_sum(comm, seed),
        "mst" => prog_mst(comm, seed),
        "dyn" => prog_dyn(comm, seed),
        "die" => prog_die(comm),
        other => panic!("unknown launch program {other:?} (expected sum|mst|dyn|die)"),
    }
}

/// SplitMix64 finalizer — the order-independent per-item hash whose
/// wrapping sum digests an edge set without fixing an edge order.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Direction- and order-independent hash of one undirected edge.
fn edge_hash(e: &WEdge) -> u64 {
    let (a, b) = (e.u.min(e.v), e.u.max(e.v));
    splitmix64(a ^ splitmix64(b ^ splitmix64(e.w as u64)))
}

/// Close out a program: snapshot this PE's counters, reduce them
/// machine-wide, and render the digest on rank 0.
fn digest(comm: &Comm, program: &str, fields: &[(&str, u64)]) -> Option<String> {
    let s = comm.stats();
    let messages = comm.allreduce_sum(s.messages);
    let bytes = comm.allreduce_sum(s.bytes);
    // Nonnegative f64: bit order equals numeric order, and the BSP
    // bottleneck clock is the max over PEs.
    let modeled_bits = comm.allreduce_max(s.modeled_time.to_bits());
    (comm.rank() == 0).then(|| {
        let mut out = format!("{{\"program\":\"{program}\"");
        for (k, v) in fields {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push_str(&format!(
            ",\"messages\":{messages},\"bytes\":{bytes},\"modeled_bits\":{modeled_bits}}}"
        ));
        out
    })
}

/// Mixed collectives: reductions, gathers, a skewed all-to-all — a fast
/// smoke of every transport primitive.
fn prog_sum(comm: &Comm, seed: u64) -> Option<String> {
    let p = comm.size();
    let me = comm.rank() as u64;
    let mut acc = comm.allreduce_sum(splitmix64(seed ^ me) >> 32);
    acc = acc.wrapping_add(comm.exscan_sum(me + 1).wrapping_mul(31));
    for v in comm.allgather(splitmix64(acc ^ me) >> 40) {
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3).wrapping_add(v);
    }
    let bufs = FlatBuckets::from_dest_fn(
        p,
        (0..6 * p as u64)
            .map(|k| splitmix64(seed ^ me ^ k))
            .collect::<Vec<u64>>(),
        |&x| (x % p as u64) as usize,
    );
    let local: u64 = comm
        .sparse_alltoallv(bufs)
        .into_payload()
        .into_iter()
        .fold(0, u64::wrapping_add);
    let value = comm.allreduce(acc.wrapping_add(local), |a, b| a.wrapping_add(*b));
    digest(comm, "sum", &[("value", value)])
}

/// Generate one of the paper's graph families and run distributed
/// Borůvka; digest the forest by weight, size and unordered edge hash.
fn prog_mst(comm: &Comm, seed: u64) -> Option<String> {
    let input = InputGraph::generate(comm, GraphConfig::Rgg2D { n: 512, m: 4096 }, seed);
    let cfg = MstConfig {
        base_case_constant: 16,
        ..MstConfig::default()
    };
    let r = boruvka_mst(comm, &input, &cfg);
    let mut w = 0u64;
    let mut h = 0u64;
    for e in &r.edges {
        let we = e.wedge();
        w = w.wrapping_add(we.w as u64);
        h = h.wrapping_add(edge_hash(&we));
    }
    let weight = comm.allreduce_sum(w);
    let edges = comm.allreduce_sum(r.edges.len() as u64);
    let ehash = comm.allreduce(h, |a, b| a.wrapping_add(*b));
    digest(
        comm,
        "mst",
        &[("weight", weight), ("edges", edges), ("ehash", ehash)],
    )
}

/// Bootstrap the batch-dynamic maintainer on a grid and push three
/// deterministic update batches through it.
fn prog_dyn(comm: &Comm, seed: u64) -> Option<String> {
    let n = 256u64;
    let cfg = DynConfig::new(n).with_mst(MstConfig {
        base_case_constant: 8,
        filter_min_edges_per_pe: 16,
        ..MstConfig::default()
    });
    let input = InputGraph::generate(comm, GraphConfig::Grid2D { rows: 16, cols: 16 }, seed);
    let mut dynmst = DynMst::bootstrap(comm, cfg, &input);
    for batch_no in 0..3u64 {
        // Updates enter on rank 0, as through the service front-end.
        let batch: Vec<Update> = if comm.rank() == 0 {
            (0..12u64)
                .map(|k| {
                    let r = splitmix64(seed ^ (batch_no << 32) ^ k);
                    let u = r % n;
                    let v = (r >> 17) % n;
                    if k % 5 == 4 {
                        Update::Delete { u, v }
                    } else {
                        Update::Insert(WEdge::new(u, v, (r >> 40) as u32 % 1000 + 1))
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        dynmst.apply_batch(comm, &batch);
    }
    let (shard, rep) = dynmst.into_parts();
    let h = shard
        .msf
        .iter()
        .map(|e| edge_hash(&e.wedge()))
        .fold(0u64, u64::wrapping_add);
    let ehash = comm.allreduce(h, |a, b| a.wrapping_add(*b));
    digest(
        comm,
        "dyn",
        &[
            ("weight", rep.weight),
            ("edges", rep.msf_edges),
            ("ehash", ehash),
            ("batches", rep.stats.batches),
        ],
    )
}

/// One rank kills its OS process mid-run; the survivors' next
/// collective must surface a typed transport error, never hang. Only
/// meaningful under the launcher — in-process it takes every PE down.
fn prog_die(comm: &Comm) -> Option<String> {
    let _ = comm.allreduce_sum(1u64);
    if comm.size() > 1 && comm.rank() == comm.size() - 1 {
        std::process::exit(17);
    }
    let _ = comm.allreduce_sum(2u64);
    digest(comm, "die", &[("survived", comm.size() as u64)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig, TransportKind};

    /// The digest is a pure function of (program, p, seed) — identical
    /// across transports because the modeled counters are. The launcher
    /// suite compares the sockets side against this cells oracle.
    #[test]
    fn digests_are_transport_invariant_in_process() {
        for program in ["sum", "mst", "dyn"] {
            let run_on = |t: TransportKind| {
                Machine::run(MachineConfig::new(4).with_transport(t), move |comm| {
                    run(program, comm, 11)
                })
                .results
            };
            let cells = run_on(TransportKind::Cells);
            assert!(cells[0].is_some() && cells[1..].iter().all(Option::is_none));
            assert_eq!(cells, run_on(TransportKind::Bytes), "{program}");
            assert_eq!(cells, run_on(TransportKind::Sockets), "{program}");
        }
    }

    #[test]
    fn edge_hash_ignores_direction_and_order() {
        let a = edge_hash(&WEdge::new(3, 9, 5));
        let b = edge_hash(&WEdge::new(9, 3, 5));
        assert_eq!(a, b);
        assert_ne!(a, edge_hash(&WEdge::new(3, 9, 6)));
        let set1 = [WEdge::new(0, 1, 2), WEdge::new(1, 2, 3)];
        let set2 = [WEdge::new(2, 1, 3), WEdge::new(1, 0, 2)];
        let sum = |s: &[WEdge]| s.iter().map(edge_hash).fold(0u64, u64::wrapping_add);
        assert_eq!(sum(&set1), sum(&set2));
    }

    #[test]
    #[should_panic(expected = "unknown launch program")]
    fn unknown_program_panics() {
        Machine::run(MachineConfig::new(1), |comm| run("frobnicate", comm, 0));
    }
}
