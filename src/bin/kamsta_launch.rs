//! `kamsta_launch` — run a rank program on `p` real OS processes over
//! the socket transport, under a supervising parent.
//!
//! Launcher mode (no `KAMSTA_LAUNCH_RENDEZVOUS` in the environment):
//! binds a loopback rendezvous listener, spawns `--pes` copies of this
//! same binary as workers, serves the rank-assignment handshake, and
//! then **supervises**: worker stderr is piped through the launcher
//! (echoed live, with the last typed error line captured), worker exits
//! are polled, and on the first failure the launcher emits a structured
//! JSON failure report on stderr —
//!
//! ```text
//! {"event":"worker-failure","pe":2,"phase":"run","exit":3,"error":"transport-error: ..."}
//! ```
//!
//! — gives surviving workers a short grace window to fail typed on
//! their own (their io deadline surfaces the dead peer), then kills the
//! stragglers so one dead worker can never stall the job to the full
//! timeout. `--relaunch N` retries the whole job up to `N` more times
//! with backoff (`{"event":"relaunch",...}` announces each attempt).
//! Exit status 0 iff some attempt's every worker exited 0.
//!
//! Worker mode (`KAMSTA_LAUNCH_RENDEZVOUS` set, as the launcher does
//! for its children): connect to the rendezvous, form the TCP mesh via
//! [`Machine::try_run_worker`], run the program from
//! [`kamsta::launchprog`]. Rank 0 prints the JSON digest on stdout; a
//! typed transport failure prints `transport-error: ...` on stderr and
//! exits 3. Fault plans (`KAMSTA_FAULTS`) and the handshake deadline
//! (`KAMSTA_HANDSHAKE_TIMEOUT_MS`) ride the inherited environment.
//!
//! ```text
//! kamsta_launch --pes 4 --program mst --seed 7 [--stagger-ms 50] \
//!     [--timeout-ms 30000] [--relaunch 2]
//! ```
//!
//! `--stagger-ms k` makes worker `r` sleep `r*k` ms before contacting
//! the rendezvous, forcing out-of-order connects through the handshake.

use kamsta::comm::serve_rendezvous;
use kamsta::{launchprog, Machine, MachineConfig, MachineError};
use std::io::BufRead;
use std::net::TcpListener;
use std::os::unix::process::ExitStatusExt;
use std::process::{exit, Child, Command, ExitStatus, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Opts {
    pes: usize,
    program: String,
    seed: u64,
    stagger_ms: u64,
    timeout_ms: u64,
    relaunch: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: kamsta_launch --pes N [--program sum|mst|dyn|die] [--seed S] \
         [--stagger-ms MS] [--timeout-ms MS] [--relaunch N]"
    );
    exit(2)
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        pes: 0,
        program: "sum".into(),
        seed: 42,
        stagger_ms: 0,
        timeout_ms: 30_000,
        relaunch: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--pes" => opts.pes = value.parse().unwrap_or_else(|_| usage()),
            "--program" => opts.program = value,
            "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage()),
            "--stagger-ms" => opts.stagger_ms = value.parse().unwrap_or_else(|_| usage()),
            "--timeout-ms" => opts.timeout_ms = value.parse().unwrap_or_else(|_| usage()),
            "--relaunch" => opts.relaunch = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if opts.pes == 0 {
        usage()
    }
    opts
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("launch-error: {name}={v:?} is not a number");
            exit(2)
        }),
        Err(_) => default,
    }
}

fn worker(rendezvous: String) -> ! {
    let pes = env_u64("KAMSTA_LAUNCH_PES", 0) as usize;
    let rank = std::env::var("KAMSTA_LAUNCH_RANK")
        .ok()
        .map(|v| v.parse::<usize>().unwrap_or_else(|_| usage()));
    let program = std::env::var("KAMSTA_LAUNCH_PROGRAM").unwrap_or_else(|_| "sum".into());
    let seed = env_u64("KAMSTA_LAUNCH_SEED", 42);
    let stagger = env_u64("KAMSTA_LAUNCH_STAGGER_MS", 0);
    let timeout = Duration::from_millis(env_u64("KAMSTA_LAUNCH_TIMEOUT_MS", 30_000));
    if stagger > 0 {
        std::thread::sleep(Duration::from_millis(rank.unwrap_or(0) as u64 * stagger));
    }
    // KAMSTA_FAULTS / KAMSTA_HANDSHAKE_TIMEOUT_MS resolve inside the
    // machine config, identically on every worker (inherited env).
    let cfg = MachineConfig::new(pes)
        .with_rendezvous(rendezvous)
        .with_io_timeout(timeout);
    match Machine::try_run_worker(cfg, rank, |comm| launchprog::run(&program, comm, seed)) {
        Ok(run) => {
            if let Some(digest) = run.result {
                println!("{digest}");
            }
            exit(0)
        }
        Err(e @ MachineError::Transport { .. }) => {
            eprintln!("transport-error: {e}");
            exit(3)
        }
        Err(e) => {
            eprintln!("launch-error: {e}");
            exit(2)
        }
    }
}

/// One supervised worker: the child process, the thread forwarding its
/// stderr, and the last typed error line seen on it.
struct Supervised {
    child: Child,
    last_error: Arc<Mutex<Option<String>>>,
    forwarder: Option<std::thread::JoinHandle<()>>,
    status: Option<ExitStatus>,
    reported: bool,
}

/// Escape a string for embedding in a JSON event line.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Emit the structured failure report for one dead worker.
fn report_failure(pe: usize, phase: &str, status: ExitStatus, last_error: &Option<String>) {
    let exit_code = status
        .code()
        .map_or_else(|| "null".to_string(), |c| c.to_string());
    let error = last_error
        .as_deref()
        .map_or_else(|| "null".to_string(), |e| format!("\"{}\"", json_escape(e)));
    eprintln!(
        "{{\"event\":\"worker-failure\",\"pe\":{pe},\"phase\":\"{phase}\",\
         \"exit\":{exit_code},\"error\":{error}}}"
    );
}

fn spawn_workers(opts: &Opts, exe: &std::path::Path, addr: &str) -> Vec<Supervised> {
    (0..opts.pes)
        .map(|rank| {
            let mut child = Command::new(exe)
                .env("KAMSTA_LAUNCH_RENDEZVOUS", addr)
                .env("KAMSTA_LAUNCH_PES", opts.pes.to_string())
                .env("KAMSTA_LAUNCH_RANK", rank.to_string())
                .env("KAMSTA_LAUNCH_PROGRAM", &opts.program)
                .env("KAMSTA_LAUNCH_SEED", opts.seed.to_string())
                .env("KAMSTA_LAUNCH_STAGGER_MS", opts.stagger_ms.to_string())
                .env("KAMSTA_LAUNCH_TIMEOUT_MS", opts.timeout_ms.to_string())
                .stderr(Stdio::piped())
                .spawn()
                .unwrap_or_else(|e| {
                    eprintln!("launch-error: cannot spawn worker {rank}: {e}");
                    exit(2)
                });
            let last_error = Arc::new(Mutex::new(None));
            let forwarder = child.stderr.take().map(|stderr| {
                let last_error = Arc::clone(&last_error);
                std::thread::spawn(move || {
                    let reader = std::io::BufReader::new(stderr);
                    for line in reader.lines().map_while(Result::ok) {
                        if line.starts_with("transport-error:") || line.starts_with("launch-error:")
                        {
                            *last_error.lock().unwrap() = Some(line.clone());
                        }
                        eprintln!("[pe {rank}] {line}");
                    }
                })
            });
            Supervised {
                child,
                last_error,
                forwarder,
                status: None,
                reported: false,
            }
        })
        .collect()
}

/// Kill and reap every worker still running; join the stderr forwarders.
fn teardown(workers: &mut [Supervised], phase: &str) {
    for (rank, w) in workers.iter_mut().enumerate() {
        if w.status.is_none() {
            let _ = w.child.kill();
            if let Ok(status) = w.child.wait() {
                w.status = Some(status);
            }
        }
        if let Some(status) = w.status {
            if !status.success() && !w.reported {
                w.reported = true;
                report_failure(rank, phase, status, &w.last_error.lock().unwrap());
            }
        }
        if let Some(f) = w.forwarder.take() {
            let _ = f.join();
        }
    }
}

/// Supervise the running workers until all exit (or the first failure's
/// grace window expires and the rest are killed). Returns success.
fn supervise(workers: &mut [Supervised], timeout: Duration) -> bool {
    // After the first failure, give survivors a moment to fail typed on
    // their own (their io deadline detects the dead peer; their stderr
    // explains the failure from their side) — then kill the rest. The
    // window is a fraction of the io timeout so a die mid-superstep
    // resolves in seconds, not the full deadline.
    let grace = (timeout / 2).min(Duration::from_secs(2));
    let mut first_failure: Option<Instant> = None;
    loop {
        let mut all_done = true;
        for (rank, w) in workers.iter_mut().enumerate() {
            if w.status.is_some() {
                continue;
            }
            match w.child.try_wait() {
                Ok(Some(status)) => {
                    w.status = Some(status);
                    if !status.success() {
                        w.reported = true;
                        report_failure(rank, "run", status, &w.last_error.lock().unwrap());
                        first_failure.get_or_insert_with(Instant::now);
                    }
                }
                Ok(None) => all_done = false,
                Err(e) => {
                    eprintln!("launch-error: waiting on worker {rank}: {e}");
                    w.status = Some(ExitStatus::from_raw(0x7f00));
                    first_failure.get_or_insert_with(Instant::now);
                }
            }
        }
        if all_done {
            break;
        }
        if let Some(t0) = first_failure {
            if t0.elapsed() > grace {
                eprintln!("launch-error: killing remaining workers after failure grace window");
                teardown(workers, "run");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    teardown(workers, "run"); // reaps nothing if all exited; joins forwarders
    workers
        .iter()
        .all(|w| w.status.is_some_and(|s| s.success()))
}

/// One full job attempt: rendezvous + supervised run. Returns success.
fn run_job(opts: &Opts, exe: &std::path::Path) -> bool {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| {
        eprintln!("launch-error: cannot bind rendezvous listener: {e}");
        exit(2)
    });
    let addr = listener.local_addr().unwrap().to_string();
    let mut workers = spawn_workers(opts, exe, &addr);

    // Serve the handshake, aborting early if any worker dies before the
    // mesh exists (it could never complete, only time out).
    let served = serve_rendezvous(
        &listener,
        opts.pes,
        Duration::from_millis(opts.timeout_ms),
        || {
            for (rank, w) in workers.iter_mut().enumerate() {
                if let Ok(Some(status)) = w.child.try_wait() {
                    w.status = Some(status);
                    if !w.reported {
                        w.reported = true;
                        report_failure(rank, "rendezvous", status, &w.last_error.lock().unwrap());
                    }
                    return Some(format!("worker {rank} exited during rendezvous: {status}"));
                }
            }
            None
        },
    );
    if let Err(e) = served {
        eprintln!("launch-error: rendezvous failed: {e}");
        teardown(&mut workers, "rendezvous");
        return false;
    }
    supervise(&mut workers, Duration::from_millis(opts.timeout_ms))
}

fn launcher(opts: Opts) -> ! {
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("launch-error: cannot locate own binary: {e}");
        exit(2)
    });
    for attempt in 0..=opts.relaunch {
        if attempt > 0 {
            let backoff = Duration::from_millis(200u64 << (attempt - 1).min(4));
            eprintln!(
                "{{\"event\":\"relaunch\",\"attempt\":{attempt},\"of\":{},\
                 \"backoff_ms\":{}}}",
                opts.relaunch,
                backoff.as_millis()
            );
            std::thread::sleep(backoff);
        }
        if run_job(&opts, &exe) {
            exit(0)
        }
    }
    exit(1)
}

fn main() {
    match std::env::var("KAMSTA_LAUNCH_RENDEZVOUS") {
        Ok(addr) => worker(addr),
        Err(_) => launcher(parse_opts()),
    }
}
