//! `kamsta_launch` — run a rank program on `p` real OS processes over
//! the socket transport.
//!
//! Launcher mode (no `KAMSTA_LAUNCH_RENDEZVOUS` in the environment):
//! binds a loopback rendezvous listener, spawns `--pes` copies of this
//! same binary as workers, serves the rank-assignment handshake, and
//! waits for every worker. Exit status 0 iff every worker exited 0.
//!
//! Worker mode (`KAMSTA_LAUNCH_RENDEZVOUS` set, as the launcher does
//! for its children): connect to the rendezvous, form the TCP mesh via
//! [`Machine::try_run_worker`], run the program from
//! [`kamsta::launchprog`]. Rank 0 prints the JSON digest on stdout; a
//! typed transport failure prints `transport-error: ...` on stderr and
//! exits 3.
//!
//! ```text
//! kamsta_launch --pes 4 --program mst --seed 7 [--stagger-ms 50] [--timeout-ms 30000]
//! ```
//!
//! `--stagger-ms k` makes worker `r` sleep `r*k` ms before contacting
//! the rendezvous, forcing out-of-order connects through the handshake.

use kamsta::comm::serve_rendezvous;
use kamsta::{launchprog, Machine, MachineConfig, MachineError};
use std::net::TcpListener;
use std::process::{exit, Child, Command};
use std::time::Duration;

struct Opts {
    pes: usize,
    program: String,
    seed: u64,
    stagger_ms: u64,
    timeout_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: kamsta_launch --pes N [--program sum|mst|dyn|die] [--seed S] \
         [--stagger-ms MS] [--timeout-ms MS]"
    );
    exit(2)
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        pes: 0,
        program: "sum".into(),
        seed: 42,
        stagger_ms: 0,
        timeout_ms: 30_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--pes" => opts.pes = value.parse().unwrap_or_else(|_| usage()),
            "--program" => opts.program = value,
            "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage()),
            "--stagger-ms" => opts.stagger_ms = value.parse().unwrap_or_else(|_| usage()),
            "--timeout-ms" => opts.timeout_ms = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if opts.pes == 0 {
        usage()
    }
    opts
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("launch-error: {name}={v:?} is not a number");
            exit(2)
        }),
        Err(_) => default,
    }
}

fn worker(rendezvous: String) -> ! {
    let pes = env_u64("KAMSTA_LAUNCH_PES", 0) as usize;
    let rank = std::env::var("KAMSTA_LAUNCH_RANK")
        .ok()
        .map(|v| v.parse::<usize>().unwrap_or_else(|_| usage()));
    let program = std::env::var("KAMSTA_LAUNCH_PROGRAM").unwrap_or_else(|_| "sum".into());
    let seed = env_u64("KAMSTA_LAUNCH_SEED", 42);
    let stagger = env_u64("KAMSTA_LAUNCH_STAGGER_MS", 0);
    let timeout = Duration::from_millis(env_u64("KAMSTA_LAUNCH_TIMEOUT_MS", 30_000));
    if stagger > 0 {
        std::thread::sleep(Duration::from_millis(rank.unwrap_or(0) as u64 * stagger));
    }
    let cfg = MachineConfig::new(pes)
        .with_rendezvous(rendezvous)
        .with_io_timeout(timeout);
    match Machine::try_run_worker(cfg, rank, |comm| launchprog::run(&program, comm, seed)) {
        Ok(run) => {
            if let Some(digest) = run.result {
                println!("{digest}");
            }
            exit(0)
        }
        Err(e @ MachineError::Transport { .. }) => {
            eprintln!("transport-error: {e}");
            exit(3)
        }
        Err(e) => {
            eprintln!("launch-error: {e}");
            exit(2)
        }
    }
}

fn launcher(opts: Opts) -> ! {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap_or_else(|e| {
        eprintln!("launch-error: cannot bind rendezvous listener: {e}");
        exit(2)
    });
    let addr = listener.local_addr().unwrap().to_string();
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("launch-error: cannot locate own binary: {e}");
        exit(2)
    });
    let mut children: Vec<Child> = (0..opts.pes)
        .map(|rank| {
            Command::new(&exe)
                .env("KAMSTA_LAUNCH_RENDEZVOUS", &addr)
                .env("KAMSTA_LAUNCH_PES", opts.pes.to_string())
                .env("KAMSTA_LAUNCH_RANK", rank.to_string())
                .env("KAMSTA_LAUNCH_PROGRAM", &opts.program)
                .env("KAMSTA_LAUNCH_SEED", opts.seed.to_string())
                .env("KAMSTA_LAUNCH_STAGGER_MS", opts.stagger_ms.to_string())
                .env("KAMSTA_LAUNCH_TIMEOUT_MS", opts.timeout_ms.to_string())
                .spawn()
                .unwrap_or_else(|e| {
                    eprintln!("launch-error: cannot spawn worker {rank}: {e}");
                    exit(2)
                })
        })
        .collect();

    // Serve the handshake, aborting early if any worker dies before the
    // mesh exists (it could never complete, only time out).
    let served = serve_rendezvous(
        &listener,
        opts.pes,
        Duration::from_millis(opts.timeout_ms),
        || {
            for (rank, child) in children.iter_mut().enumerate() {
                if let Ok(Some(status)) = child.try_wait() {
                    return Some(format!("worker {rank} exited during rendezvous: {status}"));
                }
            }
            None
        },
    );
    if let Err(e) = served {
        eprintln!("launch-error: rendezvous failed: {e}");
        for child in &mut children {
            let _ = child.kill();
            let _ = child.wait();
        }
        exit(1)
    }

    // Workers are now bounded by their own io timeout: a dead peer
    // surfaces as a typed transport error, so plain waits terminate.
    let mut ok = true;
    for (rank, child) in children.iter_mut().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("launch-error: worker {rank} failed: {status}");
                ok = false;
            }
            Err(e) => {
                eprintln!("launch-error: waiting on worker {rank}: {e}");
                ok = false;
            }
        }
    }
    exit(if ok { 0 } else { 1 })
}

fn main() {
    match std::env::var("KAMSTA_LAUNCH_RENDEZVOUS") {
        Ok(addr) => worker(addr),
        Err(_) => launcher(parse_opts()),
    }
}
