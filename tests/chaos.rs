//! Differential chaos suite: seeded fault plans against the launch
//! programs' cost digests.
//!
//! The oracle is the digest of a fault-free cells-transport run — a
//! pure function of (program, p, seed) that folds in results *and* the
//! machine-wide modeled cost counters. A transient fault plan (delays,
//! short reads/writes, duplicate frames, transient send refusals) must
//! be *invisible* in that digest on both byte-moving transports: one
//! string equality checks that the framing layer absorbed every
//! injected fault without changing a single modeled byte. Lethal plans
//! must terminate with a typed error well under twice the io deadline —
//! the failure mode this suite exists to rule out is the hang.

use kamsta::{
    launchprog, DynConfig, FaultPlan, GraphConfig, LethalFault, LethalKind, Machine, MachineConfig,
    MachineError, MstService, Request, Response, ServiceError, TransportKind, Update, WEdge,
};
use std::time::{Duration, Instant};

fn machine(p: usize, transport: TransportKind, plan: Option<FaultPlan>) -> MachineConfig {
    let cfg = MachineConfig::new(p)
        .with_transport(transport)
        .with_io_timeout(Duration::from_secs(20));
    match plan {
        Some(plan) => cfg.with_faults(plan),
        None => cfg,
    }
}

/// Rank 0's digest line for one program run.
fn digest(
    program: &'static str,
    p: usize,
    transport: TransportKind,
    seed: u64,
    plan: Option<FaultPlan>,
) -> String {
    let out = Machine::try_run(machine(p, transport, plan), move |comm| {
        launchprog::run(program, comm, seed)
    })
    .unwrap_or_else(|e| panic!("{program} p={p} {transport:?}: {e}"));
    out.results
        .into_iter()
        .flatten()
        .next()
        .expect("rank 0 digest")
}

/// A transient-only plan: every fault class that must be recoverable.
fn transient(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_delays(0.15, 100)
        .with_short_writes(0.35)
        .with_short_reads(0.35)
        .with_duplicates(0.25)
        .with_retries(0.25)
}

#[test]
fn transient_plans_are_digest_invisible_across_transports_and_scales() {
    for p in [2usize, 4, 8] {
        let oracle = digest("sum", p, TransportKind::Cells, 11, None);
        for transport in [TransportKind::Bytes, TransportKind::Sockets] {
            for fault_seed in [5u64, 71] {
                let got = digest("sum", p, transport, 11, Some(transient(fault_seed)));
                assert_eq!(
                    got, oracle,
                    "sum p={p} {transport:?} fault_seed={fault_seed}"
                );
            }
        }
    }
}

#[test]
fn transient_plans_leave_the_mst_pipeline_digest_identical() {
    // The full distributed Borůvka pipeline (generation, two-level
    // all-to-alls, recursion) under an aggressive transient plan: the
    // forest and the modeled cost counters both survive untouched.
    let oracle = digest("mst", 4, TransportKind::Cells, 11, None);
    for transport in [TransportKind::Bytes, TransportKind::Sockets] {
        let got = digest("mst", 4, transport, 11, Some(transient(29)));
        assert_eq!(got, oracle, "mst {transport:?}");
    }
}

#[test]
fn lethal_plans_terminate_typed_well_under_twice_the_deadline() {
    let deadline = Duration::from_secs(5);
    for transport in [TransportKind::Bytes, TransportKind::Sockets] {
        for kind in [
            LethalKind::Truncate,
            LethalKind::BitFlip,
            LethalKind::Disconnect,
        ] {
            let plan = FaultPlan::seeded(13).with_lethal(LethalFault {
                rank: 1,
                kind,
                at_seq: 2,
            });
            let cfg = MachineConfig::new(4)
                .with_transport(transport)
                .with_io_timeout(deadline)
                .with_faults(plan);
            let start = Instant::now();
            let err = Machine::try_run(cfg, |comm| launchprog::run("sum", comm, 11)).unwrap_err();
            let elapsed = start.elapsed();
            assert!(
                matches!(err, MachineError::Transport { .. }),
                "{transport:?}/{kind:?}: {err:?}"
            );
            assert!(
                elapsed < deadline * 2,
                "{transport:?}/{kind:?}: took {elapsed:?} against a {deadline:?} deadline"
            );
        }
    }
}

#[test]
fn service_degrades_typed_after_an_unrecoverable_fault() {
    // An unrecoverable fault mid-batch poisons the service: the failing
    // call reports `ServiceError::Machine`, everything after answers
    // `Degraded` (typed, immediate) instead of panicking or re-running
    // a doomed machine.
    let plan = FaultPlan::seeded(17).with_lethal(LethalFault {
        rank: 1,
        kind: LethalKind::Truncate,
        at_seq: 4,
    });
    let mut svc = MstService::builder(2, DynConfig::new(64))
        .machine(
            MachineConfig::new(2)
                .with_transport(TransportKind::Bytes)
                .with_io_timeout(Duration::from_secs(5))
                .with_faults(plan),
        )
        .build()
        .expect("construction performs no communication");

    // Drive until the lethal frame fires; the first failing call must
    // name the machine failure.
    let mut first: Option<ServiceError> = None;
    if let Err(e) = svc.try_load_generated(GraphConfig::Grid2D { rows: 8, cols: 8 }, 3) {
        first = Some(e);
    } else {
        for k in 0..64u64 {
            let up = Update::Insert(WEdge::new(k % 64, (k * 7 + 1) % 64, (k % 9 + 1) as u32));
            match svc.try_submit(up) {
                Ok(_) => {}
                Err(e) => {
                    first = Some(e);
                    break;
                }
            }
            if let Err(e) = svc.try_flush() {
                first = Some(e);
                break;
            }
        }
    }
    let first = first.expect("the lethal frame must fire within the run");
    assert!(
        matches!(first, ServiceError::Machine(_)),
        "first failure is the machine error: {first}"
    );
    assert!(svc.poisoned().is_some());

    // Every subsequent fallible call is typed degradation, instantly.
    let start = Instant::now();
    assert!(matches!(
        svc.try_msf_weight(),
        Err(ServiceError::Degraded(_))
    ));
    assert!(matches!(svc.try_flush(), Err(ServiceError::Degraded(_))));
    assert!(matches!(
        svc.try_submit(Update::Delete { u: 0, v: 1 }),
        Err(ServiceError::Degraded(_))
    ));
    // And the request loop answers with the degraded response rather
    // than taking the front-end down.
    assert_eq!(svc.handle(Request::MsfWeight), Response::Degraded);
    assert!(
        start.elapsed() < Duration::from_millis(100),
        "degraded answers must not re-run the machine"
    );
}
