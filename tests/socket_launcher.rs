//! Launcher integration: `kamsta_launch` spawning real OS processes
//! over loopback TCP must reproduce, byte for byte, the digests of the
//! same rank programs run in-process on the cells transport — results
//! *and* modeled cost counters — and a dying worker must fail the whole
//! launch with a typed transport error within the io timeout.

use kamsta::{launchprog, Machine, MachineConfig, TransportKind};
use std::process::Command;
use std::time::{Duration, Instant};

/// The in-process cells oracle for one (program, p, seed).
fn cells_digest(program: &'static str, pes: usize, seed: u64) -> String {
    let out = Machine::run(
        MachineConfig::new(pes).with_transport(TransportKind::Cells),
        move |comm| launchprog::run(program, comm, seed),
    );
    out.results[0].clone().expect("rank 0 digest")
}

fn launch(args: &[&str]) -> std::process::Output {
    launch_env(args, &[])
}

fn launch_env(args: &[&str], env: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_kamsta_launch"));
    cmd.args(args)
        .env_remove("KAMSTA_LAUNCH_RENDEZVOUS")
        .env_remove("KAMSTA_TRANSPORT")
        .env_remove("KAMSTA_FAULTS");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn kamsta_launch")
}

fn digest_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "launch failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).trim().to_string()
}

#[test]
fn mst_across_processes_matches_in_process_cells_bit_for_bit() {
    let out = launch(&["--pes", "4", "--program", "mst", "--seed", "7"]);
    assert_eq!(digest_of(&out), cells_digest("mst", 4, 7));
}

#[test]
fn dyn_differential_across_processes() {
    let out = launch(&["--pes", "3", "--program", "dyn", "--seed", "19"]);
    assert_eq!(digest_of(&out), cells_digest("dyn", 3, 19));
}

#[test]
fn staggered_out_of_order_connects_still_form_the_mesh() {
    // Worker r sleeps r*120ms before contacting the rendezvous: later
    // ranks dial earlier ones that are already waiting, earlier ranks
    // see accepts arrive out of order.
    let out = launch(&[
        "--pes",
        "4",
        "--program",
        "sum",
        "--seed",
        "3",
        "--stagger-ms",
        "120",
    ]);
    assert_eq!(digest_of(&out), cells_digest("sum", 4, 3));
}

#[test]
fn dying_worker_fails_the_launch_with_a_typed_error_not_a_hang() {
    let start = Instant::now();
    let out = launch(&[
        "--pes",
        "3",
        "--program",
        "die",
        "--seed",
        "1",
        "--timeout-ms",
        "5000",
    ]);
    let elapsed = start.elapsed();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "a dead PE must fail the launch");
    assert!(
        stderr.contains("transport-error"),
        "survivors must report the typed transport error, got:\n{stderr}"
    );
    // The supervisor names the failure in a structured report: which
    // PE, which phase, which exit status.
    assert!(
        stderr.contains("\"event\":\"worker-failure\"") && stderr.contains("\"pe\":2"),
        "supervisor must emit a structured failure report, got:\n{stderr}"
    );
    // Detection is prompt: survivors see the dead peer's socket close
    // (or a liveness probe fail) and the supervisor reaps the exit —
    // well inside the 5s io deadline, nowhere near a hang.
    assert!(elapsed < Duration::from_secs(10), "took {elapsed:?}");
}

#[test]
fn relaunch_retries_the_job_and_still_fails_deterministic_deaths() {
    // `--relaunch 1` re-runs the whole job once after a failure; a
    // deterministically dying program must fail both attempts and the
    // events must show the retry happened.
    let start = Instant::now();
    let out = launch(&[
        "--pes",
        "2",
        "--program",
        "die",
        "--seed",
        "1",
        "--timeout-ms",
        "4000",
        "--relaunch",
        "1",
    ]);
    let elapsed = start.elapsed();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "both attempts must fail");
    assert!(
        stderr.contains("\"event\":\"relaunch\"") && stderr.contains("\"attempt\":1"),
        "the retry must be visible in the event stream, got:\n{stderr}"
    );
    assert!(elapsed < Duration::from_secs(20), "took {elapsed:?}");
}

#[test]
fn transient_fault_plan_via_env_is_digest_invisible_across_processes() {
    // The `KAMSTA_FAULTS` plan reaches every worker through the
    // inherited environment; a transient plan over real sockets between
    // real processes must reproduce the cells oracle byte for byte.
    let out = launch_env(
        &["--pes", "3", "--program", "sum", "--seed", "3"],
        &[(
            "KAMSTA_FAULTS",
            "seed=9,delay=0.1,delay_us=80,short_write=0.3,short_read=0.3,dup=0.2,retry=0.2",
        )],
    );
    assert_eq!(digest_of(&out), cells_digest("sum", 3, 3));
}

#[test]
fn lethal_fault_plan_via_env_fails_the_launch_promptly() {
    // An unrecoverable injected fault behaves exactly like a real one:
    // typed error, structured supervisor report, prompt exit.
    let start = Instant::now();
    let out = launch_env(
        &[
            "--pes",
            "3",
            "--program",
            "sum",
            "--seed",
            "3",
            "--timeout-ms",
            "5000",
        ],
        &[("KAMSTA_FAULTS", "seed=3,lethal=disconnect@1:2")],
    );
    let elapsed = start.elapsed();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "a lethal fault must fail the launch");
    assert!(
        stderr.contains("transport-error") && stderr.contains("\"event\":\"worker-failure\""),
        "typed error plus structured report expected, got:\n{stderr}"
    );
    assert!(elapsed < Duration::from_secs(10), "took {elapsed:?}");
}
