//! Launcher integration: `kamsta_launch` spawning real OS processes
//! over loopback TCP must reproduce, byte for byte, the digests of the
//! same rank programs run in-process on the cells transport — results
//! *and* modeled cost counters — and a dying worker must fail the whole
//! launch with a typed transport error within the io timeout.

use kamsta::{launchprog, Machine, MachineConfig, TransportKind};
use std::process::Command;
use std::time::{Duration, Instant};

/// The in-process cells oracle for one (program, p, seed).
fn cells_digest(program: &'static str, pes: usize, seed: u64) -> String {
    let out = Machine::run(
        MachineConfig::new(pes).with_transport(TransportKind::Cells),
        move |comm| launchprog::run(program, comm, seed),
    );
    out.results[0].clone().expect("rank 0 digest")
}

fn launch(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_kamsta_launch"))
        .args(args)
        .env_remove("KAMSTA_LAUNCH_RENDEZVOUS")
        .env_remove("KAMSTA_TRANSPORT")
        .output()
        .expect("spawn kamsta_launch")
}

fn digest_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "launch failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).trim().to_string()
}

#[test]
fn mst_across_processes_matches_in_process_cells_bit_for_bit() {
    let out = launch(&["--pes", "4", "--program", "mst", "--seed", "7"]);
    assert_eq!(digest_of(&out), cells_digest("mst", 4, 7));
}

#[test]
fn dyn_differential_across_processes() {
    let out = launch(&["--pes", "3", "--program", "dyn", "--seed", "19"]);
    assert_eq!(digest_of(&out), cells_digest("dyn", 3, 19));
}

#[test]
fn staggered_out_of_order_connects_still_form_the_mesh() {
    // Worker r sleeps r*120ms before contacting the rendezvous: later
    // ranks dial earlier ones that are already waiting, earlier ranks
    // see accepts arrive out of order.
    let out = launch(&[
        "--pes",
        "4",
        "--program",
        "sum",
        "--seed",
        "3",
        "--stagger-ms",
        "120",
    ]);
    assert_eq!(digest_of(&out), cells_digest("sum", 4, 3));
}

#[test]
fn dying_worker_fails_the_launch_with_a_typed_error_not_a_hang() {
    let start = Instant::now();
    let out = launch(&[
        "--pes",
        "3",
        "--program",
        "die",
        "--seed",
        "1",
        "--timeout-ms",
        "5000",
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "a dead PE must fail the launch");
    assert!(
        stderr.contains("transport-error"),
        "survivors must report the typed transport error, got:\n{stderr}"
    );
    // Bounded by the io timeout (plus process overhead), never a hang.
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "took {:?}",
        start.elapsed()
    );
}
