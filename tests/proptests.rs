//! Property-based cross-crate tests: for arbitrary random graphs and PE
//! counts, the distributed algorithms must produce a verified MSF
//! matching the sequential Kruskal reference.

use kamsta::core::seq::{kruskal, msf_weight};
use kamsta::{verify_msf, Algorithm, MstConfig, Runner, WEdge};
use proptest::prelude::*;

/// An arbitrary undirected weighted graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = Vec<WEdge>> {
    (
        2u64..60,
        prop::collection::vec((0u64..60, 0u64..60, 1u32..255), 1..250),
    )
        .prop_map(|(n, raw)| {
            let mut edges = Vec::new();
            for (u, v, w) in raw {
                let (u, v) = (u % n, v % n);
                if u != v {
                    edges.push(WEdge::new(u, v, w));
                    edges.push(WEdge::new(v, u, w));
                }
            }
            edges.sort_unstable();
            edges.dedup_by(|a, b| a.u == b.u && a.v == b.v);
            // Re-symmetrise after dedup kept the first weight per pair:
            // rebuild from canonical pairs so directions agree.
            let mut canon: Vec<WEdge> = edges.iter().filter(|e| e.u < e.v).copied().collect();
            canon.dedup_by(|a, b| a.u == b.u && a.v == b.v);
            let mut out = Vec::with_capacity(canon.len() * 2);
            for e in canon {
                out.push(e);
                out.push(e.reversed());
            }
            out.sort_unstable();
            out
        })
}

fn cfg() -> MstConfig {
    MstConfig {
        base_case_constant: 8,
        filter_min_edges_per_pe: 16,
        ..MstConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn distributed_boruvka_matches_kruskal(
        edges in arb_graph(),
        p in 1usize..7,
    ) {
        prop_assume!(!edges.is_empty());
        let (msf, summary) = Runner::new(p, 1)
            .with_mst_config(cfg())
            .msf_edges(edges.clone(), Algorithm::Boruvka);
        prop_assert!(verify_msf(&edges, &msf).is_ok(), "{:?}", verify_msf(&edges, &msf));
        prop_assert_eq!(summary.msf_weight, msf_weight(&kruskal(&edges)));
    }

    #[test]
    fn filter_boruvka_matches_kruskal(
        edges in arb_graph(),
        p in 1usize..7,
    ) {
        prop_assume!(!edges.is_empty());
        let (msf, summary) = Runner::new(p, 1)
            .with_mst_config(cfg())
            .msf_edges(edges.clone(), Algorithm::FilterBoruvka);
        prop_assert!(verify_msf(&edges, &msf).is_ok(), "{:?}", verify_msf(&edges, &msf));
        prop_assert_eq!(summary.msf_weight, msf_weight(&kruskal(&edges)));
    }

    #[test]
    fn baselines_match_kruskal(
        edges in arb_graph(),
        p in 1usize..6,
    ) {
        prop_assume!(!edges.is_empty());
        let reference = msf_weight(&kruskal(&edges));
        for algo in [Algorithm::SparseMatrix, Algorithm::MndMst] {
            let (msf, summary) = Runner::new(p, 1)
                .with_mst_config(cfg())
                .msf_edges(edges.clone(), algo);
            prop_assert!(verify_msf(&edges, &msf).is_ok(), "{algo:?}");
            prop_assert_eq!(summary.msf_weight, reference, "{:?}", algo);
        }
    }
}
