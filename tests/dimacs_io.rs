//! DIMACS round trip: write a `.gr` file, load it, distribute it, and
//! compute its MST — the path a user takes with the real US-road
//! instance.

use kamsta::core::seq::{kruskal, msf_weight};
use kamsta::{Algorithm, Runner};
use kamsta_graph::io::{load_dimacs, symmetrize};
use std::io::Write;

#[test]
fn dimacs_file_to_mst() {
    // A small weighted graph in DIMACS shortest-path format.
    let dir = std::env::temp_dir().join("kamsta_test_dimacs");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("toy.gr");
    {
        let mut f = std::fs::File::create(&path).unwrap();
        writeln!(f, "c toy road network").unwrap();
        writeln!(f, "p sp 6 16").unwrap();
        let arcs = [
            (1, 2, 7),
            (1, 3, 9),
            (1, 6, 14),
            (2, 3, 10),
            (2, 4, 15),
            (3, 4, 11),
            (3, 6, 2),
            (4, 5, 6),
            (5, 6, 9),
        ];
        for (u, v, w) in arcs {
            writeln!(f, "a {u} {v} {w}").unwrap();
            writeln!(f, "a {v} {u} {w}").unwrap();
        }
    }

    let (n, edges) = load_dimacs(&path).expect("parse");
    assert_eq!(n, 6);
    assert_eq!(edges.len(), 18);
    let edges = symmetrize(edges);

    let (msf, summary) = Runner::new(3, 1).msf_edges(edges.clone(), Algorithm::Boruvka);
    kamsta::verify_msf(&edges, &msf).unwrap();
    // Classic Dijkstra-example graph: its MST weight is 33.
    assert_eq!(summary.msf_weight, 33);
    assert_eq!(summary.msf_weight, msf_weight(&kruskal(&edges)));
    assert_eq!(summary.msf_edges, 5);

    std::fs::remove_file(&path).ok();
}

#[test]
fn dimacs_disconnected_forest() {
    let text = "p sp 6 4\na 1 2 5\na 2 1 5\na 4 5 7\na 5 4 7\n";
    let (_, edges) = kamsta_graph::io::parse_dimacs(text.as_bytes()).unwrap();
    let edges = symmetrize(edges);
    let (msf, summary) = Runner::new(2, 1).msf_edges(edges.clone(), Algorithm::Boruvka);
    kamsta::verify_msf(&edges, &msf).unwrap();
    assert_eq!(summary.msf_edges, 2, "two components, one edge each");
    assert_eq!(summary.msf_weight, 12);
}
