//! Cross-algorithm parity: the distributed algorithms and every
//! sequential reference must report the identical MSF weight (the
//! unique-weight total order makes the forest itself unique).

use kamsta::core::seq::{boruvka, filter_kruskal, kkt, kruskal, msf_weight, prim};
use kamsta::{Algorithm, GraphConfig, Machine, MachineConfig, MstConfig, Runner, WEdge};

fn materialize(config: GraphConfig, seed: u64) -> Vec<WEdge> {
    Machine::run(MachineConfig::new(4), move |comm| {
        let input = kamsta::InputGraph::generate(comm, config, seed);
        input
            .graph
            .edges
            .iter()
            .map(|e| e.wedge())
            .collect::<Vec<WEdge>>()
    })
    .results
    .into_iter()
    .flatten()
    .collect()
}

fn check_parity(config: GraphConfig, seed: u64, expected_edges: Option<u64>) {
    let runner = Runner::new(4, 1).with_mst_config(MstConfig {
        base_case_constant: 16,
        filter_min_edges_per_pe: 64,
        ..MstConfig::default()
    });

    let dist_b = runner.run_generated(config, Algorithm::Boruvka, seed);
    let dist_f = runner.run_generated(config, Algorithm::FilterBoruvka, seed);
    assert_eq!(
        dist_b.msf_weight, dist_f.msf_weight,
        "{config:?}: Boruvka vs FilterBoruvka"
    );
    assert_eq!(
        dist_b.msf_edges, dist_f.msf_edges,
        "{config:?}: edge-count parity"
    );
    if let Some(n) = expected_edges {
        assert_eq!(dist_b.msf_edges, n, "{config:?}: spanning-tree size");
    }

    // The same graph, materialised for the sequential references.
    let edges = materialize(config, seed);
    let reference = msf_weight(&kruskal(&edges));
    assert_eq!(dist_b.msf_weight, reference, "{config:?}: vs Kruskal");
    for (name, msf) in [
        ("seq Boruvka", boruvka(&edges)),
        ("Jarnik-Prim", prim(&edges)),
        ("Filter-Kruskal", filter_kruskal(&edges)),
        ("KKT", kkt(&edges, seed)),
        (
            "shared-memory Boruvka",
            kamsta::minimum_spanning_forest(&edges),
        ),
    ] {
        assert_eq!(
            msf_weight(&msf),
            reference,
            "{config:?}: {name} weight parity"
        );
    }
}

#[test]
fn gnm_instance_parity() {
    check_parity(GraphConfig::Gnm { n: 250, m: 2000 }, 42, None);
}

#[test]
fn grid_instance_parity() {
    check_parity(
        GraphConfig::Grid2D { rows: 14, cols: 14 },
        7,
        Some(14 * 14 - 1),
    );
}
