//! Cross-crate integration: every algorithm, every graph family, one
//! verified answer.

use kamsta::{Algorithm, GraphConfig, MstConfig, Runner};

fn families() -> Vec<GraphConfig> {
    vec![
        GraphConfig::Grid2D { rows: 16, cols: 16 },
        GraphConfig::Rgg2D { n: 400, m: 3200 },
        GraphConfig::Rgg3D { n: 400, m: 3200 },
        GraphConfig::Gnm { n: 300, m: 2400 },
        GraphConfig::Rhg {
            n: 300,
            m: 2400,
            gamma: 3.0,
        },
        GraphConfig::Rmat { scale: 8, m: 2000 },
        GraphConfig::RoadLike { rows: 16, cols: 16 },
    ]
}

fn small_cfg() -> MstConfig {
    MstConfig {
        base_case_constant: 32,
        filter_min_edges_per_pe: 64,
        ..MstConfig::default()
    }
}

#[test]
fn all_algorithms_agree_on_all_families() {
    for config in families() {
        let runner = Runner::new(4, 1).with_mst_config(small_cfg());
        let reference = runner.run_generated(config, Algorithm::Boruvka, 42);
        for algo in [
            Algorithm::FilterBoruvka,
            Algorithm::BoruvkaNoPreprocessing,
            Algorithm::SparseMatrix,
            Algorithm::MndMst,
        ] {
            let s = runner.run_generated(config, algo, 42);
            assert_eq!(
                s.msf_weight, reference.msf_weight,
                "{algo:?} on {config:?}: weight mismatch"
            );
            assert_eq!(
                s.msf_edges, reference.msf_edges,
                "{algo:?} on {config:?}: edge count mismatch"
            );
        }
    }
}

#[test]
fn results_are_independent_of_pe_count() {
    for config in [
        GraphConfig::Gnm { n: 200, m: 1600 },
        GraphConfig::Rgg2D { n: 300, m: 2400 },
    ] {
        let reference = Runner::new(1, 1)
            .with_mst_config(small_cfg())
            .run_generated(config, Algorithm::Boruvka, 7);
        for p in [2, 3, 5, 8, 13] {
            let s = Runner::new(p, 1)
                .with_mst_config(small_cfg())
                .run_generated(config, Algorithm::Boruvka, 7);
            assert_eq!(s.msf_weight, reference.msf_weight, "p={p}");
            assert_eq!(s.msf_edges, reference.msf_edges, "p={p}");
        }
    }
}

#[test]
fn hybrid_threads_and_dedup_strategies_are_transparent() {
    let config = GraphConfig::Rhg {
        n: 400,
        m: 3200,
        gamma: 3.0,
    };
    let reference = Runner::new(4, 1)
        .with_mst_config(small_cfg())
        .run_generated(config, Algorithm::Boruvka, 11);
    // 8 hybrid threads.
    let hybrid = Runner::new(4, 8)
        .with_mst_config(small_cfg())
        .run_generated(config, Algorithm::Boruvka, 11);
    assert_eq!(hybrid.msf_weight, reference.msf_weight);
    // Sort-only dedup.
    let sort_cfg = MstConfig {
        dedup: kamsta::DedupStrategy::Sort,
        ..small_cfg()
    };
    let sorted =
        Runner::new(4, 1)
            .with_mst_config(sort_cfg)
            .run_generated(config, Algorithm::Boruvka, 11);
    assert_eq!(sorted.msf_weight, reference.msf_weight);
}

#[test]
fn deterministic_across_repeated_runs() {
    let config = GraphConfig::Rmat { scale: 7, m: 1200 };
    let run = || {
        Runner::new(5, 1)
            .with_mst_config(small_cfg())
            .run_generated(config, Algorithm::FilterBoruvka, 3)
    };
    let a = run();
    let b = run();
    assert_eq!(a.msf_weight, b.msf_weight);
    assert_eq!(a.msf_edges, b.msf_edges);
    assert_eq!(
        a.modeled_time, b.modeled_time,
        "modeled clock is deterministic"
    );
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.bytes, b.bytes);
}

#[test]
fn alltoall_strategies_do_not_change_results() {
    let config = GraphConfig::Gnm { n: 256, m: 2000 };
    let mut weights = Vec::new();
    for kind in [
        kamsta::AlltoallKind::Auto,
        kamsta::AlltoallKind::Direct,
        kamsta::AlltoallKind::Grid,
        kamsta::AlltoallKind::Hypercube,
    ] {
        let s = Runner::new(8, 1)
            .with_mst_config(small_cfg())
            .with_alltoall(kind)
            .run_generated(config, Algorithm::Boruvka, 5);
        weights.push(s.msf_weight);
    }
    weights.dedup();
    assert_eq!(weights.len(), 1, "all delivery strategies agree");
}

#[test]
fn shared_memory_matches_distributed() {
    let config = GraphConfig::Rgg2D { n: 500, m: 4000 };
    let distributed = Runner::new(4, 1)
        .with_mst_config(small_cfg())
        .run_generated(config, Algorithm::Boruvka, 9);
    // Materialise the same graph and run the shared-memory Borůvka.
    let out = kamsta::Machine::run(kamsta::MachineConfig::new(4), move |comm| {
        let input = kamsta::InputGraph::generate(comm, config, 9);
        input
            .graph
            .edges
            .iter()
            .map(|e| e.wedge())
            .collect::<Vec<kamsta::WEdge>>()
    });
    let full: Vec<kamsta::WEdge> = out.results.into_iter().flatten().collect();
    let msf = kamsta::minimum_spanning_forest(&full);
    let weight: u64 = msf.iter().map(|e| e.w as u64).sum();
    assert_eq!(weight, distributed.msf_weight);
}
