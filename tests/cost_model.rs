//! Modeled-cost assertions: the qualitative relations the paper's
//! engineering decisions rest on must hold in the α-β-γ model.

use kamsta::{Algorithm, AlltoallKind, GraphConfig, MstConfig, Runner};

fn cfg() -> MstConfig {
    MstConfig {
        base_case_constant: 256,
        filter_min_edges_per_pe: 128,
        ..MstConfig::default()
    }
}

/// Sec. IV-A / Fig. 4: preprocessing reduces communication volume on
/// high-locality graphs.
#[test]
fn preprocessing_cuts_bytes_on_local_graphs() {
    let config = GraphConfig::Rgg2D {
        n: 1 << 13,
        m: 1 << 17,
    };
    let runner = Runner::new(8, 1).with_mst_config(cfg());
    let with_prep = runner.run_generated(config, Algorithm::Boruvka, 42);
    let without = runner.run_generated(config, Algorithm::BoruvkaNoPreprocessing, 42);
    assert_eq!(with_prep.msf_weight, without.msf_weight);
    assert!(
        with_prep.bytes * 2 < without.bytes,
        "preprocessing should cut communicated bytes at least 2x: {} vs {}",
        with_prep.bytes,
        without.bytes
    );
    assert!(with_prep.modeled_time < without.modeled_time);
}

/// Sec. VI-A / Fig. 2: the grid all-to-all needs far fewer message
/// startups than the direct one at scale.
#[test]
fn grid_alltoall_cuts_messages() {
    let config = GraphConfig::Gnm {
        n: 1 << 12,
        m: 1 << 15,
    };
    let direct = Runner::new(36, 1)
        .with_mst_config(cfg())
        .with_alltoall(AlltoallKind::Direct)
        .run_generated(config, Algorithm::Boruvka, 42);
    let grid = Runner::new(36, 1)
        .with_mst_config(cfg())
        .with_alltoall(AlltoallKind::Grid)
        .run_generated(config, Algorithm::Boruvka, 42);
    assert_eq!(direct.msf_weight, grid.msf_weight);
    // The full run includes sorting traffic that the strategy does not
    // touch, so the whole-run reduction is smaller than the pure
    // all-to-all factor of √p (Fig. 2 isolates the contraction phase).
    assert!(
        (grid.messages as f64) < 0.8 * direct.messages as f64,
        "grid should cut startups noticeably: {} vs {}",
        grid.messages,
        direct.messages
    );
    // ...at the price of extra volume.
    assert!(grid.bytes > direct.bytes);
}

/// Sec. V / Fig. 3 (GNM): filtering roughly halves the communication
/// volume on dense, locality-free graphs — most edges are eliminated
/// before they are ever sorted or relabeled — and wins outright in the
/// volume-dominated regime (the paper's per-core volumes are ~32x our
/// scaled-down defaults, which at the default β is equivalent to the
/// larger β used here; see EXPERIMENTS.md).
#[test]
fn filter_wins_on_dense_gnm() {
    // Avg degree 128. The one-direction base-case prefilter halves the
    // non-filtered gather, so the density must be high enough that
    // filtering's asymptotic advantage (heavy edges never travel at all)
    // dominates that constant factor.
    let config = GraphConfig::Gnm {
        n: 1 << 11,
        m: 1 << 18,
    };
    let volume_dominated = kamsta::CostModel {
        beta: 2e-8,
        ..kamsta::CostModel::default()
    };
    let runner = Runner::new(16, 1)
        .with_mst_config(cfg())
        .with_cost(volume_dominated);
    let plain = runner.run_generated(config, Algorithm::BoruvkaNoPreprocessing, 42);
    let filter = runner.run_generated(config, Algorithm::FilterBoruvka, 42);
    assert_eq!(plain.msf_weight, filter.msf_weight);
    assert!(
        filter.bytes * 3 < plain.bytes * 2,
        "filter must cut communicated volume by ≥ a third: {} vs {}",
        filter.bytes,
        plain.bytes
    );
    assert!(
        filter.modeled_time < plain.modeled_time,
        "filter {} should beat plain {} on dense GNM when volume dominates",
        filter.modeled_time,
        plain.modeled_time
    );
}

/// Sec. VII-A: our algorithms beat the sparse-matrix baseline clearly on
/// high-locality inputs.
#[test]
fn boruvka_beats_sparse_matrix_on_grids() {
    let config = GraphConfig::Grid2D {
        rows: 128,
        cols: 128,
    };
    let runner = Runner::new(16, 1).with_mst_config(cfg());
    let ours = runner.run_generated(config, Algorithm::Boruvka, 42);
    let theirs = runner.run_generated(config, Algorithm::SparseMatrix, 42);
    assert_eq!(ours.msf_weight, theirs.msf_weight);
    assert!(
        ours.modeled_time * 2.0 < theirs.modeled_time,
        "expected >2x advantage: ours {} vs sparseMatrix {}",
        ours.modeled_time,
        theirs.modeled_time
    );
}

/// Hybrid threading reduces modeled time on local graphs at equal core
/// budget (the boruvka-8 vs boruvka-1 effect of Fig. 3).
#[test]
fn hybrid_helps_on_local_graphs() {
    let config = GraphConfig::Rgg2D {
        n: 1 << 13,
        m: 1 << 17,
    };
    let one =
        Runner::new(16, 1)
            .with_mst_config(cfg())
            .run_generated(config, Algorithm::Boruvka, 42);
    let eight =
        Runner::new(2, 8)
            .with_mst_config(cfg())
            .run_generated(config, Algorithm::Boruvka, 42);
    assert_eq!(one.msf_weight, eight.msf_weight);
    assert!(
        eight.modeled_time < one.modeled_time,
        "boruvka-8 {} should beat boruvka-1 {} on RGG",
        eight.modeled_time,
        one.modeled_time
    );
}
