//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, range/tuple/collection strategies,
//! `any::<T>()`, `prop_map`, and the `prop_assert*`/`prop_assume!`
//! macros. Inputs are drawn from a deterministic per-test RNG (no
//! shrinking) — enough to exercise the properties reproducibly without
//! the real crate.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values; the stand-in's `Strategy` only generates
    /// (no shrinking).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`]; retries until the predicate
    /// accepts (bounded).
    #[derive(Clone, Copy, Debug)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// A fixed value is a strategy for itself (`Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The `any::<T>()` strategy.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_arbitrary_wide_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $t
                }
            }
        )*};
    }

    impl_arbitrary_wide_int!(u128, i128);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Full-domain floats by bit pattern — includes NaNs and infinities,
    /// as the real crate's `any::<f64>()` can produce.
    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary_value(rng: &mut TestRng) -> Option<T> {
            if rng.next_u64() & 1 == 1 {
                Some(T::arbitrary_value(rng))
            } else {
                None
            }
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary_value(rng),)+)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic xorshift64* stream seeded per test.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test's name so failures
        /// reproduce across runs.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Why a generated case did not produce a verdict.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw fresh ones.
        Reject(String),
        /// A `prop_assert*` failed; abort the test.
        Fail(String),
    }

    impl TestCaseError {
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Runner configuration; only `cases` is honoured. As with the real
    /// crate, the `PROPTEST_CASES` environment variable overrides the
    /// configured count at run time (the CI nightly job uses it to turn
    /// the same suites into long soak runs).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

pub mod prelude {
    /// The `prop::` facade (`prop::collection::vec` etc.).
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The test-harness macro: runs each property over `cases` generated
/// inputs; `prop_assume!` rejections draw replacements (bounded).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let mut config = $cfg;
                if let Some(cases) = ::std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|v| v.parse::<u32>().ok())
                {
                    config.cases = cases;
                }
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest: too many prop_assume! rejections ({} attempts)",
                        attempts
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {}", msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Reject the current case's inputs and draw fresh ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the property unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the property unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} != {:?}", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Fail the property if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: {:?} == {:?}", format!($($fmt)*), a, b),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = TestRng::deterministic("domain");
        for _ in 0..200 {
            let x = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&x));
            let v = Strategy::generate(&prop::collection::vec(any::<u32>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let (a, b) = Strategy::generate(&(0u32..4, 10usize..12), &mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(x in 0u64..50, v in prop::collection::vec(any::<u32>(), 0..6)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 50, "x is {} which is under 50", x);
        }
    }
}
