//! Offline stand-in for the subset of the `rand` API this workspace
//! uses: `SmallRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range(Range)`. The generator is xoshiro256++-class quality
//! via SplitMix64 seeding of a xorshift* core — deterministic and plenty
//! for pivot sampling.

use std::ops::Range;

/// Seedable generator trait (the `seed_from_u64` shape only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling helper implemented for the integer types the
/// workspace draws.
pub trait SampleUniform: Copy {
    fn sample(rng: &mut impl RngCore, range: Range<Self>) -> Self;
}

/// Raw 64-bit generator core.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// High-level drawing interface (the `gen_range` shape only).
pub trait Rng: RngCore + Sized {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut impl RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end - range.start) as u128;
                range.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (SplitMix64-seeded
    /// xorshift64*).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scramble so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Self {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna).
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0usize..10);
            assert_eq!(x, b.gen_range(0usize..10));
            assert!(x < 10);
        }
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_ne!(va, vc, "different seeds should diverge");
    }
}
