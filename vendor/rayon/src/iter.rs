//! Parallel iterators over indexed sources: slices, vectors, and
//! integer ranges, split into contiguous chunks and driven through a
//! binary [`join`](crate::join) tree.
//!
//! # Determinism
//!
//! Ordered drivers (`collect`) concatenate chunk results in chunk-index
//! order, and every adapter sees the item's **source index**, so the
//! output of a pipeline is a pure function of the source — independent
//! of the ambient width, the chunk boundaries, and the interleaving of
//! chunk execution. Unordered drivers (`for_each`) guarantee only that
//! each item is visited exactly once; side effects must commute, as in
//! real rayon.

use crate::pool::{current_num_threads, join};
use std::mem::ManuallyDrop;
use std::ops::Range;
use std::sync::Arc;

/// Below this many items a parallel call runs inline on the caller.
const SEQ_CUTOFF: usize = 2048;
/// Minimum chunk size: chunk bookkeeping is one queue round-trip, so
/// chunks stay coarse enough for that to vanish in the noise.
const MIN_CHUNK: usize = 1024;

/// Chunk size for `len` items at `width`-way parallelism: ~4 chunks per
/// lane for steal-back load balancing, floored at [`MIN_CHUNK`].
fn grain(len: usize, width: usize) -> usize {
    (len / (width.max(1) * 4)).max(MIN_CHUNK)
}

/// An indexed, splittable producer of items — the base of every
/// parallel iterator here.
pub trait Source: Send + Sized {
    type Item: Send;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, at)` and `[at, len)`.
    fn split_at(self, at: usize) -> (Self, Self);
    /// Consume the chunk sequentially; `f` receives
    /// `(base + position, item)` with `position` the index within this
    /// chunk — i.e. the item's index in the original source.
    fn for_each_indexed(self, base: usize, f: &mut impl FnMut(usize, Self::Item));
}

impl<'a, T: Sync + 'a> Source for &'a [T] {
    type Item = &'a T;
    fn len(&self) -> usize {
        (**self).len()
    }
    fn split_at(self, at: usize) -> (Self, Self) {
        (*self).split_at(at)
    }
    fn for_each_indexed(self, base: usize, f: &mut impl FnMut(usize, &'a T)) {
        for (i, x) in self.iter().enumerate() {
            f(base + i, x);
        }
    }
}

impl<'a, T: Send + 'a> Source for &'a mut [T] {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        (**self).len()
    }
    fn split_at(self, at: usize) -> (Self, Self) {
        self.split_at_mut(at)
    }
    fn for_each_indexed(self, base: usize, f: &mut impl FnMut(usize, &'a mut T)) {
        for (i, x) in self.iter_mut().enumerate() {
            f(base + i, x);
        }
    }
}

macro_rules! range_source {
    ($t:ty) => {
        impl Source for Range<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                }
            }
            fn split_at(self, at: usize) -> (Self, Self) {
                let mid = self.start + at as $t;
                (self.start..mid, mid..self.end)
            }
            fn for_each_indexed(self, base: usize, f: &mut impl FnMut(usize, $t)) {
                for (i, v) in self.enumerate() {
                    f(base + i, v);
                }
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<Range<$t>, Identity>;
            fn into_par_iter(self) -> Self::Iter {
                ParIter::new(self)
            }
        }
    };
}

range_source!(u32);
range_source!(u64);
range_source!(usize);

/// Keeper of a `Vec`'s allocation while its elements are consumed by
/// value across chunks; frees the (by then element-less) buffer when
/// the last chunk drops.
struct RawAlloc<T> {
    ptr: *mut T,
    cap: usize,
}

unsafe impl<T: Send> Send for RawAlloc<T> {}
unsafe impl<T: Send> Sync for RawAlloc<T> {}

impl<T> Drop for RawAlloc<T> {
    fn drop(&mut self) {
        // SAFETY: every element was either moved out by a chunk's
        // `for_each_indexed` or dropped by that chunk's own `Drop`; only
        // the raw buffer remains.
        unsafe { drop(Vec::from_raw_parts(self.ptr, 0, self.cap)) };
    }
}

/// An owning chunk of a consumed `Vec<T>`: elements `[start, end)`.
pub struct VecSource<T: Send> {
    alloc: Arc<RawAlloc<T>>,
    start: usize,
    end: usize,
}

impl<T: Send> Source for VecSource<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.end - self.start
    }
    fn split_at(mut self, at: usize) -> (Self, Self) {
        let mid = self.start + at;
        let right = VecSource {
            alloc: Arc::clone(&self.alloc),
            start: mid,
            end: self.end,
        };
        self.end = mid;
        (self, right)
    }
    fn for_each_indexed(mut self, base: usize, f: &mut impl FnMut(usize, T)) {
        let mut i = 0;
        while self.start < self.end {
            // SAFETY: `[start, end)` is owned by this chunk alone; the
            // cursor moves past the element before `f` runs, so a
            // panicking `f` leaves `Drop` to free exactly the rest.
            let item = unsafe { self.alloc.ptr.add(self.start).read() };
            self.start += 1;
            f(base + i, item);
            i += 1;
        }
    }
}

impl<T: Send> Drop for VecSource<T> {
    fn drop(&mut self) {
        let rest = std::ptr::slice_from_raw_parts_mut(
            // SAFETY: the chunk exclusively owns `[start, end)`.
            unsafe { self.alloc.ptr.add(self.start) },
            self.end - self.start,
        );
        unsafe { std::ptr::drop_in_place(rest) };
    }
}

/// A per-item transformation chain, applied with the item's source
/// index. `None` means the item was filtered out.
pub trait Pipeline<In>: Send + Sync {
    type Out: Send;
    fn apply(&self, index: usize, item: In) -> Option<Self::Out>;
}

/// The empty pipeline.
pub struct Identity;

impl<T: Send> Pipeline<T> for Identity {
    type Out = T;
    fn apply(&self, _index: usize, item: T) -> Option<T> {
        Some(item)
    }
}

pub struct Map<P, F> {
    pipe: P,
    f: F,
}

impl<In, P, F, R> Pipeline<In> for Map<P, F>
where
    P: Pipeline<In>,
    F: Fn(P::Out) -> R + Send + Sync,
    R: Send,
{
    type Out = R;
    fn apply(&self, index: usize, item: In) -> Option<R> {
        self.pipe.apply(index, item).map(&self.f)
    }
}

pub struct Filter<P, F> {
    pipe: P,
    f: F,
}

impl<In, P, F> Pipeline<In> for Filter<P, F>
where
    P: Pipeline<In>,
    F: Fn(&P::Out) -> bool + Send + Sync,
{
    type Out = P::Out;
    fn apply(&self, index: usize, item: In) -> Option<P::Out> {
        self.pipe.apply(index, item).filter(|v| (self.f)(v))
    }
}

pub struct FilterMap<P, F> {
    pipe: P,
    f: F,
}

impl<In, P, F, R> Pipeline<In> for FilterMap<P, F>
where
    P: Pipeline<In>,
    F: Fn(P::Out) -> Option<R> + Send + Sync,
    R: Send,
{
    type Out = R;
    fn apply(&self, index: usize, item: In) -> Option<R> {
        self.pipe.apply(index, item).and_then(&self.f)
    }
}

/// Pairs each surviving item with its **source** index (identical to
/// sequential `enumerate` when no prior adapter filters, which is the
/// only indexed shape real rayon permits anyway).
pub struct Enumerate<P> {
    pipe: P,
}

impl<In, P> Pipeline<In> for Enumerate<P>
where
    P: Pipeline<In>,
{
    type Out = (usize, P::Out);
    fn apply(&self, index: usize, item: In) -> Option<(usize, P::Out)> {
        self.pipe.apply(index, item).map(|v| (index, v))
    }
}

/// A parallel iterator: an indexed [`Source`] plus a [`Pipeline`] of
/// per-item adapters.
pub struct ParIter<S, P> {
    source: S,
    pipe: P,
}

impl<S: Source> ParIter<S, Identity> {
    fn new(source: S) -> Self {
        ParIter {
            source,
            pipe: Identity,
        }
    }
}

impl<S, P> ParIter<S, P>
where
    S: Source,
    P: Pipeline<S::Item>,
{
    pub fn map<F, R>(self, f: F) -> ParIter<S, Map<P, F>>
    where
        F: Fn(P::Out) -> R + Send + Sync,
        R: Send,
    {
        ParIter {
            source: self.source,
            pipe: Map { pipe: self.pipe, f },
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<S, Filter<P, F>>
    where
        F: Fn(&P::Out) -> bool + Send + Sync,
    {
        ParIter {
            source: self.source,
            pipe: Filter { pipe: self.pipe, f },
        }
    }

    pub fn filter_map<F, R>(self, f: F) -> ParIter<S, FilterMap<P, F>>
    where
        F: Fn(P::Out) -> Option<R> + Send + Sync,
        R: Send,
    {
        ParIter {
            source: self.source,
            pipe: FilterMap { pipe: self.pipe, f },
        }
    }

    pub fn enumerate(self) -> ParIter<S, Enumerate<P>> {
        ParIter {
            source: self.source,
            pipe: Enumerate { pipe: self.pipe },
        }
    }

    /// Visit every surviving item once; chunks run concurrently, so `f`
    /// must be safe to call from multiple threads at once.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Out) + Send + Sync,
    {
        let width = current_num_threads();
        let len = self.source.len();
        if width <= 1 || len <= SEQ_CUTOFF {
            let pipe = &self.pipe;
            self.source.for_each_indexed(0, &mut |i, x| {
                if let Some(v) = pipe.apply(i, x) {
                    f(v);
                }
            });
            return;
        }
        for_each_rec(self.source, 0, grain(len, width), &self.pipe, &f);
    }

    /// Collect surviving items in source order. The result is identical
    /// at every width: chunk outputs are concatenated in chunk order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<P::Out>,
    {
        let width = current_num_threads();
        let len = self.source.len();
        let vec = if width <= 1 || len <= SEQ_CUTOFF {
            let mut out = Vec::new();
            let pipe = &self.pipe;
            self.source.for_each_indexed(0, &mut |i, x| {
                if let Some(v) = pipe.apply(i, x) {
                    out.push(v);
                }
            });
            out
        } else {
            collect_rec(self.source, 0, grain(len, width), &self.pipe)
        };
        C::from_vec(vec)
    }

    /// Number of surviving items.
    pub fn count(self) -> usize {
        let width = current_num_threads();
        let len = self.source.len();
        if width <= 1 || len <= SEQ_CUTOFF {
            let mut n = 0usize;
            let pipe = &self.pipe;
            self.source.for_each_indexed(0, &mut |i, x| {
                if pipe.apply(i, x).is_some() {
                    n += 1;
                }
            });
            return n;
        }
        count_rec(self.source, 0, grain(len, width), &self.pipe)
    }
}

fn for_each_rec<S, P, F>(source: S, base: usize, grain: usize, pipe: &P, f: &F)
where
    S: Source,
    P: Pipeline<S::Item>,
    F: Fn(P::Out) + Send + Sync,
{
    let len = source.len();
    if len <= grain {
        source.for_each_indexed(base, &mut |i, x| {
            if let Some(v) = pipe.apply(i, x) {
                f(v);
            }
        });
        return;
    }
    let mid = len / 2;
    let (l, r) = source.split_at(mid);
    join(
        || for_each_rec(l, base, grain, pipe, f),
        || for_each_rec(r, base + mid, grain, pipe, f),
    );
}

fn collect_rec<S, P>(source: S, base: usize, grain: usize, pipe: &P) -> Vec<P::Out>
where
    S: Source,
    P: Pipeline<S::Item>,
{
    let len = source.len();
    if len <= grain {
        let mut out = Vec::new();
        source.for_each_indexed(base, &mut |i, x| {
            if let Some(v) = pipe.apply(i, x) {
                out.push(v);
            }
        });
        return out;
    }
    let mid = len / 2;
    let (l, r) = source.split_at(mid);
    let (mut lv, rv) = join(
        || collect_rec(l, base, grain, pipe),
        || collect_rec(r, base + mid, grain, pipe),
    );
    lv.extend(rv);
    lv
}

fn count_rec<S, P>(source: S, base: usize, grain: usize, pipe: &P) -> usize
where
    S: Source,
    P: Pipeline<S::Item>,
{
    let len = source.len();
    if len <= grain {
        let mut n = 0usize;
        source.for_each_indexed(base, &mut |i, x| {
            if pipe.apply(i, x).is_some() {
                n += 1;
            }
        });
        return n;
    }
    let mid = len / 2;
    let (l, r) = source.split_at(mid);
    let (ln, rn) = join(
        || count_rec(l, base, grain, pipe),
        || count_rec(r, base + mid, grain, pipe),
    );
    ln + rn
}

/// Collection types a parallel iterator can gather into.
pub trait FromParallelIterator<T: Send> {
    fn from_vec(v: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_vec(v: Vec<T>) -> Self {
        v
    }
}

/// By-value parallel iteration.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParIter<&'a [T], Identity>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(self)
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<&'a [T], Identity>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(self.as_slice())
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = ParIter<&'a mut [T], Identity>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(self)
    }
}

impl<'a, T: Send + 'a> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Iter = ParIter<&'a mut [T], Identity>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(self.as_mut_slice())
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<VecSource<T>, Identity>;
    fn into_par_iter(self) -> Self::Iter {
        let mut v = ManuallyDrop::new(self);
        let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
        ParIter::new(VecSource {
            alloc: Arc::new(RawAlloc { ptr, cap }),
            start: 0,
            end: len,
        })
    }
}

/// `par_iter()` — by-shared-reference parallel iteration.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send;
    type Iter;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoParallelIterator,
{
    type Item = <&'data I as IntoParallelIterator>::Item;
    type Iter = <&'data I as IntoParallelIterator>::Iter;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_iter_mut()` — by-mutable-reference parallel iteration.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send;
    type Iter;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoParallelIterator,
{
    type Item = <&'data mut I as IntoParallelIterator>::Item;
    type Iter = <&'data mut I as IntoParallelIterator>::Iter;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_par_iter()
    }
}
