//! The process-wide worker pool and the structured-parallelism
//! primitives built on it: [`join`], [`scope`], and the ambient-width
//! machinery behind [`ThreadPool::install`].
//!
//! # Architecture
//!
//! One lazy **global pool** per process, spawned on first parallel use,
//! with `available_parallelism()` detached worker threads. Callers never
//! block while work is pending: `join` runs its first closure inline and
//! then either *steals back* the second (if no worker claimed it yet) or
//! *helps* — executing other queued jobs — until it completes. Worker
//! threads park on a condvar when the queue is empty, so an idle pool
//! costs nothing.
//!
//! Instead of per-worker Chase-Lev deques there is a single
//! mutex-guarded chunk queue (the "chunk-queue equivalent"): every job
//! in this workspace is a coarse chunk of an indexed split (thousands of
//! elements), so queue contention is negligible and the steal-back path
//! keeps granularity adaptive exactly like a work-stealing deque would —
//! a caller that finds its spawned half unclaimed runs it inline,
//! collapsing to sequential execution with one atomic exchange of
//! overhead.
//!
//! # Widths
//!
//! Parallelism is governed by a thread-local **width** — the number of
//! chunks a data-parallel call may split into concurrently. Width 1
//! means strictly sequential (no job is ever spawned; `join(a, b)` is
//! exactly `(a(), b())`). [`ThreadPool::install`] sets the width for a
//! closure's dynamic extent, and spawned jobs inherit the width of their
//! spawner, so a simulated PE installed at `threads_per_pe` keeps that
//! width across nested `join`/iterator calls. The machine harness
//! installs each PE's rank closure at its configured `threads_per_pe`,
//! which is how `p × t` stops oversubscribing blindly: the global pool
//! has `available_parallelism()` workers *total*, no matter how many PEs
//! ask for how many threads — excess chunks queue and are drained by
//! the PE threads themselves through the help loop.
//!
//! # Panics and safety
//!
//! Every spawned closure runs under `catch_unwind`; panics are re-thrown
//! at the `join`/`scope` boundary on the spawning thread. Spawned jobs
//! may borrow the spawner's stack: this is sound because `join` and
//! `scope` never return — normally or by unwinding — before every job
//! they spawned has run to completion or been reclaimed and executed
//! inline.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A type-erased, lifetime-erased unit of work. Invariant: the boxed
/// closure never unwinds (user code inside is wrapped in
/// `catch_unwind`), so a worker thread survives any panicking job.
type Task = Box<dyn FnOnce() + Send>;

const PENDING: u8 = 0;
const DONE: u8 = 1;

/// One spawned job: the task itself (claimable exactly once) plus the
/// completion flag the spawner waits on.
struct JobSlot {
    task: Mutex<Option<Task>>,
    state: AtomicU8,
    lock: Mutex<()>,
    cv: Condvar,
}

impl JobSlot {
    fn new(task: Task) -> Arc<Self> {
        Arc::new(JobSlot {
            task: Mutex::new(Some(task)),
            state: AtomicU8::new(PENDING),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    /// Take the task for execution; the winner of this race runs it.
    fn claim(&self) -> Option<Task> {
        self.task.lock().unwrap().take()
    }

    /// Run a claimed task and publish completion.
    fn execute(&self, task: Task) {
        task();
        let _g = self.lock.lock().unwrap();
        self.state.store(DONE, Ordering::Release);
        self.cv.notify_all();
    }

    fn is_done(&self) -> bool {
        self.state.load(Ordering::Acquire) == DONE
    }
}

/// The global injector queue plus the condvar idle workers park on.
struct Pool {
    queue: Mutex<VecDeque<Arc<JobSlot>>>,
    available: Condvar,
}

impl Pool {
    fn inject(&self, job: Arc<JobSlot>) {
        self.queue.lock().unwrap().push_back(job);
        self.available.notify_one();
    }

    fn try_pop(&self) -> Option<Arc<JobSlot>> {
        self.queue.lock().unwrap().pop_front()
    }

    /// Worker main loop: pop, claim, execute, forever. Workers are
    /// detached daemon threads; they die with the process.
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(j) = q.pop_front() {
                        break j;
                    }
                    q = self.available.wait(q).unwrap();
                }
            };
            if let Some(task) = job.claim() {
                job.execute(task);
            }
        }
    }

    /// Wait until `done()` holds, executing queued jobs in the meantime
    /// (the "help" half of help-first stealing). When the queue is dry,
    /// spin briefly, then park on `(lock, cv)` with a short timeout —
    /// the timeout bounds the stall if a new job is injected between
    /// the emptiness check and the park.
    fn help_until(&self, lock: &Mutex<()>, cv: &Condvar, done: impl Fn() -> bool) {
        const SPIN: usize = 64;
        loop {
            if done() {
                return;
            }
            if let Some(job) = self.try_pop() {
                if let Some(task) = job.claim() {
                    job.execute(task);
                }
                continue;
            }
            for _ in 0..SPIN {
                if done() {
                    return;
                }
                std::hint::spin_loop();
            }
            let g = lock.lock().unwrap();
            if done() {
                return;
            }
            let _ = cv.wait_timeout(g, Duration::from_micros(200)).unwrap();
        }
    }
}

/// The process-wide pool, spawned lazily on first parallel call.
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    static START: std::sync::Once = std::sync::Once::new();
    let p = POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
    });
    START.call_once(|| {
        for i in 0..default_width() {
            std::thread::Builder::new()
                .name(format!("rayon-worker-{i}"))
                .spawn(move || p.worker_loop())
                .expect("spawn global pool worker");
        }
    });
    p
}

thread_local! {
    /// 0 = "unset": fall back to [`default_width`].
    static WIDTH: Cell<usize> = const { Cell::new(0) };
}

/// The machine's core count — the default width outside any
/// [`ThreadPool::install`], and the global pool's worker count.
fn default_width() -> usize {
    static N: AtomicUsize = AtomicUsize::new(0);
    match N.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism().map_or(1, |n| n.get());
            N.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// The width governing parallel calls on the current thread: the
/// innermost [`ThreadPool::install`]'s thread count, or the machine's
/// core count outside any install.
pub fn current_num_threads() -> usize {
    let w = WIDTH.with(|c| c.get());
    if w == 0 {
        default_width()
    } else {
        w
    }
}

/// Run `f` with the current thread's width set to `w` (restored on exit,
/// including by unwinding).
pub(crate) fn with_width<R>(w: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            WIDTH.with(|c| c.set(self.0));
        }
    }
    let prev = WIDTH.with(|c| c.get());
    let _restore = Restore(prev);
    WIDTH.with(|c| c.set(w.max(1)));
    f()
}

/// Erase the lifetime of a task so it can sit in the global queue.
///
/// # Safety
///
/// The caller must not return or unwind past the lifetime `'a` before
/// the task has run to completion or been reclaimed and dropped.
unsafe fn erase<'a>(task: Box<dyn FnOnce() + Send + 'a>) -> Task {
    unsafe { std::mem::transmute(task) }
}

/// Execute the two closures, potentially in parallel, and return both
/// results. With width 1 this is exactly `(a(), b())`. Otherwise `b` is
/// published to the pool, `a` runs inline, and `b` is stolen back (run
/// inline too) if no worker claimed it — so granularity adapts to load
/// like a work-stealing deque's. Panics from either closure resume on
/// the calling thread once both halves have settled.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let width = current_num_threads();
    if width <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }

    struct SendPtr<T>(*mut T);
    unsafe impl<T> Send for SendPtr<T> {}

    let p = pool();
    let mut rb_slot: Option<std::thread::Result<RB>> = None;
    let rb_ptr = SendPtr(&mut rb_slot as *mut Option<std::thread::Result<RB>>);
    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
        let rb_ptr = rb_ptr;
        let r = panic::catch_unwind(AssertUnwindSafe(|| with_width(width, oper_b)));
        // SAFETY: the spawning `join` frame is alive until this job is
        // DONE (it waits below), so the result slot pointer is valid.
        unsafe { *rb_ptr.0 = Some(r) };
    });
    // SAFETY: `join` does not return — normally or by unwinding — before
    // the job has run or been reclaimed and executed inline below, so
    // every borrow captured by `oper_b` outlives its last use.
    let job = JobSlot::new(unsafe { erase(task) });
    p.inject(Arc::clone(&job));

    let ra = panic::catch_unwind(AssertUnwindSafe(oper_a));

    if let Some(task) = job.claim() {
        // No worker picked it up: steal it back and run inline.
        job.execute(task);
    } else {
        p.help_until(&job.lock, &job.cv, || job.is_done());
    }

    let rb = rb_slot.expect("rayon::join: spawned half finished without a result");
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(e), _) => panic::resume_unwind(e),
        (_, Err(e)) => panic::resume_unwind(e),
    }
}

/// Shared state of one [`scope`]: the outstanding-job latch and the
/// first captured panic.
struct ScopeData {
    pending: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    width: usize,
}

impl ScopeData {
    fn store_panic(&self, e: Box<dyn Any + Send>) {
        let mut p = self.panic.lock().unwrap();
        if p.is_none() {
            *p = Some(e);
        }
    }
}

/// A scope for spawning borrowing jobs; see [`scope`].
pub struct Scope<'scope> {
    data: Arc<ScopeData>,
    marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn `body` into the scope. The closure may borrow anything that
    /// outlives the scope; it runs at the spawner's width. Panics are
    /// captured and re-thrown when the scope closes (the first one
    /// wins), matching real rayon.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let data = Arc::clone(&self.data);
        if data.width <= 1 {
            // Sequential width: run inline, deferring any panic to the
            // scope end exactly like the parallel path would.
            let nested = Scope {
                data: Arc::clone(&data),
                marker: PhantomData,
            };
            if let Err(e) = panic::catch_unwind(AssertUnwindSafe(|| body(&nested))) {
                data.store_panic(e);
            }
            return;
        }
        data.pending.fetch_add(1, Ordering::AcqRel);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let nested = Scope {
                data: Arc::clone(&data),
                marker: PhantomData,
            };
            let r = panic::catch_unwind(AssertUnwindSafe(|| {
                with_width(data.width, || body(&nested))
            }));
            if let Err(e) = r {
                data.store_panic(e);
            }
            let _g = data.lock.lock().unwrap();
            data.pending.fetch_sub(1, Ordering::AcqRel);
            data.cv.notify_all();
        });
        // SAFETY: `scope` does not return before `pending` drains to
        // zero, so borrows of `'scope` data stay valid for the job.
        pool().inject(JobSlot::new(unsafe { erase(task) }));
    }
}

/// Create a scope in which borrowing jobs can be spawned; returns once
/// `op` and every spawned job (including nested spawns) have finished.
/// The calling thread executes queued jobs while it waits. The first
/// panic — from `op` or any job — resumes here after the scope drains.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let width = current_num_threads();
    let data = Arc::new(ScopeData {
        pending: AtomicUsize::new(0),
        lock: Mutex::new(()),
        cv: Condvar::new(),
        panic: Mutex::new(None),
        width,
    });
    let s = Scope {
        data: Arc::clone(&data),
        marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    // Even when `op` panicked: spawned jobs borrow `'scope` data that
    // unwinding would invalidate, so the latch must drain first.
    if width > 1 {
        pool().help_until(&data.lock, &data.cv, || {
            data.pending.load(Ordering::Acquire) == 0
        });
    }
    let job_panic = data.panic.lock().unwrap().take();
    match result {
        Err(e) => panic::resume_unwind(e),
        Ok(r) => {
            if let Some(e) = job_panic {
                panic::resume_unwind(e);
            }
            r
        }
    }
}

/// A width handle: `install` runs a closure whose parallel calls split
/// into at most `num_threads` concurrent chunks, all executed by the
/// one global pool. Handles are cheap value types — building one does
/// not spawn threads.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's width as the ambient parallelism.
    ///
    /// Unlike real rayon, `op` runs **inline on the calling thread**
    /// (only its parallel calls fan out), so neither `op` nor its
    /// result needs to be `Send` — which lets a simulated PE install
    /// its width around a closure borrowing thread-local machine state.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        with_width(self.width, op)
    }

    /// The width `install` grants.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

/// Error type kept for API compatibility; building a width handle
/// cannot actually fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`] width handles.
#[derive(Clone, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Width of the handle; `0` (the default) means the machine's core
    /// count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            default_width()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}
