//! Offline work-stealing stand-in for the subset of the `rayon` API
//! this workspace uses — with a **real** thread pool underneath.
//!
//! One lazy global pool (`available_parallelism()` workers) executes
//! chunked jobs from every caller; per-call parallelism is governed by
//! an ambient *width* installed via [`ThreadPool::install`], so a
//! simulated machine of `p` PE threads × `t` hybrid threads shares one
//! worker set instead of oversubscribing `p × t` OS threads. Width 1
//! (the default for non-hybrid PEs) executes strictly sequentially on
//! the calling thread — zero overhead, bit-identical to the old
//! sequential stand-in.
//!
//! See [`mod@pool`] for the execution model (chunk queue, steal-back,
//! help-while-waiting, panic routing), [`mod@iter`] for the
//! deterministic chunk-splitting drivers behind `par_iter` /
//! `into_par_iter` / `par_iter_mut`, and [`mod@slice`] for the parallel
//! merge sort behind `par_sort_unstable*`.

pub mod iter;
pub mod pool;
pub mod slice;

pub use pool::{
    current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator,
    };
    pub use crate::slice::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A handle wide enough to force the parallel paths even on a
    /// single-core host.
    fn wide() -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(8).build().unwrap()
    }

    #[test]
    fn par_iter_shapes_compile_and_run() {
        let v = vec![3u64, 1, 2];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let mut s = vec![5, 4, 1];
        s.par_sort_unstable();
        assert_eq!(s, vec![1, 4, 5]);
        let (a, b) = join(|| 1, || 2);
        assert_eq!(a + b, 3);
        let idx: Vec<(usize, u32)> = vec![9u32, 8]
            .par_iter()
            .enumerate()
            .map(|(i, &x)| (i, x))
            .collect();
        assert_eq!(idx, vec![(0, 9), (1, 8)]);
        let kept: Vec<u64> = (0..10u64).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(kept, vec![0, 2, 4, 6, 8]);
        let fm: Vec<u64> = (0..10u64)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x * 10))
            .collect();
        assert_eq!(fm, vec![0, 30, 60, 90]);
    }

    #[test]
    fn join_runs_both_and_returns_in_order() {
        wide().install(|| {
            let (a, b) = join(|| "left", || "right");
            assert_eq!((a, b), ("left", "right"));
        });
    }

    #[test]
    fn nested_join_fan_out() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        assert_eq!(wide().install(|| fib(16)), 987);
    }

    #[test]
    fn join_borrows_the_stack() {
        wide().install(|| {
            let mut left = vec![0u64; 10_000];
            let mut right = vec![0u64; 10_000];
            join(
                || left.iter_mut().enumerate().for_each(|(i, x)| *x = i as u64),
                || right.iter_mut().for_each(|x| *x = 7),
            );
            assert_eq!(left[9_999], 9_999);
            assert!(right.iter().all(|&x| x == 7));
        });
    }

    #[test]
    fn join_propagates_panic_from_either_side() {
        for side in 0..2 {
            let r = std::panic::catch_unwind(|| {
                wide().install(|| {
                    join(
                        || {
                            if side == 0 {
                                panic!("left boom")
                            }
                        },
                        || {
                            if side == 1 {
                                panic!("right boom")
                            }
                        },
                    )
                })
            });
            assert!(r.is_err(), "side {side} must propagate");
        }
    }

    #[test]
    fn scope_spawn_runs_all_jobs_with_borrows() {
        let counter = AtomicUsize::new(0);
        wide().install(|| {
            scope(|s| {
                for _ in 0..64 {
                    s.spawn(|inner| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        inner.spawn(|_| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 128);
    }

    #[test]
    fn scope_propagates_spawned_panic_after_draining() {
        let finished = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wide().install(|| {
                scope(|s| {
                    s.spawn(|_| panic!("job boom"));
                    for _ in 0..8 {
                        s.spawn(|_| {
                            finished.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }));
        assert!(r.is_err(), "spawned panic must surface at scope exit");
        // Every sibling ran to completion before the panic resumed.
        assert_eq!(finished.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn zero_len_and_tiny_splits() {
        wide().install(|| {
            let empty: Vec<u64> = Vec::new();
            let out: Vec<u64> = empty.par_iter().map(|&x| x).collect();
            assert!(out.is_empty());
            let out: Vec<u64> = (0..0u64).into_par_iter().collect();
            assert!(out.is_empty());
            let one: Vec<u64> = vec![42].into_par_iter().collect();
            assert_eq!(one, vec![42]);
            let mut tiny = [3u8, 1, 2];
            tiny.par_sort_unstable();
            assert_eq!(tiny, [1, 2, 3]);
            let mut empty_mut: [u8; 0] = [];
            empty_mut.par_sort_unstable();
        });
    }

    #[test]
    fn collect_is_identical_across_widths() {
        let n = 100_000u64;
        let seq: Vec<u64> = (0..n)
            .into_par_iter()
            .filter(|x| x % 3 != 0)
            .map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        for t in [2usize, 3, 8, 17] {
            let par: Vec<u64> = ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .unwrap()
                .install(|| {
                    (0..n)
                        .into_par_iter()
                        .filter(|x| x % 3 != 0)
                        .map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .collect()
                });
            assert_eq!(par, seq, "width {t} must not change ordered output");
        }
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let n = 50_000usize;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        wide().install(|| {
            (0..n).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn vec_into_par_iter_drops_every_element_exactly_once() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D(#[allow(dead_code)] u64);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let v: Vec<D> = (0..10_000).map(D).collect();
        wide().install(|| {
            let lens: Vec<usize> = v.into_par_iter().map(|d| d.0 as usize).collect();
            assert_eq!(lens.len(), 10_000);
        });
        assert_eq!(DROPS.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn par_iter_mut_writes_through() {
        let mut v = vec![0u64; 30_000];
        wide().install(|| {
            v.par_iter_mut()
                .enumerate()
                .for_each(|(i, x)| *x = i as u64 * 2);
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 2));
    }

    #[test]
    fn par_sort_matches_std_across_widths() {
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 16
        };
        let orig: Vec<u64> = (0..200_000).map(|_| next() % 10_000).collect();
        let mut expect = orig.clone();
        expect.sort_unstable();
        for t in [1usize, 2, 8] {
            let mut v = orig.clone();
            ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .unwrap()
                .install(|| v.par_sort_unstable());
            assert_eq!(v, expect, "width {t}");
        }
        let mut v = orig.clone();
        wide().install(|| v.par_sort_unstable_by(|a, b| b.cmp(a)));
        let mut rev = expect.clone();
        rev.reverse();
        assert_eq!(v, rev);
        let mut v = orig;
        wide().install(|| v.par_sort_unstable_by_key(|&x| u64::MAX - x));
        assert_eq!(v, rev);
    }

    #[test]
    fn install_sets_and_restores_width() {
        let outside = current_num_threads();
        wide().install(|| {
            assert_eq!(current_num_threads(), 8);
            ThreadPoolBuilder::new()
                .num_threads(3)
                .build()
                .unwrap()
                .install(|| assert_eq!(current_num_threads(), 3));
            assert_eq!(current_num_threads(), 8);
        });
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn spawned_jobs_inherit_the_spawner_width() {
        wide().install(|| {
            let (w1, w2) = join(current_num_threads, current_num_threads);
            assert_eq!((w1, w2), (8, 8));
        });
    }
}
