//! Offline stand-in for the subset of the `rayon` API this workspace
//! uses. "Parallel" iterators are plain sequential `std` iterators — the
//! simulated machine already runs one OS thread per PE, so shared-memory
//! kernels degrade gracefully to sequential execution while keeping the
//! exact call shapes (`par_iter`, `into_par_iter`, `par_sort_unstable`)
//! of the real crate.

pub mod prelude {
    /// `into_par_iter()` — sequential: any `IntoIterator` qualifies.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// `par_iter()` — sequential borrow iteration.
    pub trait IntoParallelRefIterator<'a> {
        type Iter: Iterator;
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, I: 'a + ?Sized> IntoParallelRefIterator<'a> for I
    where
        &'a I: IntoIterator,
    {
        type Iter = <&'a I as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` — sequential mutable borrow iteration.
    pub trait IntoParallelRefMutIterator<'a> {
        type Iter: Iterator;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    impl<'a, I: 'a + ?Sized> IntoParallelRefMutIterator<'a> for I
    where
        &'a mut I: IntoIterator,
    {
        type Iter = <&'a mut I as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_sort_unstable` and friends on slices.
    pub trait ParallelSliceMut<T> {
        fn as_parallel_slice_mut(&mut self) -> &mut [T];

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.as_parallel_slice_mut().sort_unstable();
        }

        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
            self.as_parallel_slice_mut().sort_unstable_by_key(f);
        }

        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F) {
            self.as_parallel_slice_mut().sort_unstable_by(f);
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn as_parallel_slice_mut(&mut self) -> &mut [T] {
            self
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Sequential stand-in for `rayon::scope`.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope {
        _marker: std::marker::PhantomData,
    })
}

/// Scope handle whose `spawn` runs the closure immediately.
pub struct Scope<'scope> {
    _marker: std::marker::PhantomData<&'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + 'scope,
    {
        f(self);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_shapes_compile_and_run() {
        let v = vec![3u64, 1, 2];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let sum: u64 = (0..5u64).into_par_iter().sum();
        assert_eq!(sum, 10);
        let mut s = vec![5, 4, 1];
        s.par_sort_unstable();
        assert_eq!(s, vec![1, 4, 5]);
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!(a + b, 3);
    }
}
