//! Parallel slice sorting: `par_sort_unstable` and friends, implemented
//! as a parallel merge sort — `sort_unstable` leaves under a binary
//! [`join`](crate::join) tree, then pairwise merges through a scratch
//! buffer.
//!
//! # Panic safety
//!
//! Merges move raw bits into a `MaybeUninit` scratch buffer and only
//! copy back after the merge completes. The source slice is never
//! invalidated mid-merge (elements are *read*, not moved out), and the
//! scratch buffer never runs element destructors — so a panicking
//! comparator unwinds with every element's bits owned exactly once by
//! the source slice. No double drops, no leaks, for arbitrary `T`.

use crate::pool::{current_num_threads, join};
use std::cmp::Ordering;
use std::mem::MaybeUninit;

/// Below this length the sequential pdqsort's constant factor wins.
const SORT_SEQ_CUTOFF: usize = 4096;

/// `par_sort_unstable*` on slices (and everything that derefs to one).
pub trait ParallelSliceMut<T: Send> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    /// Sort ascending, potentially in parallel. Unstable: equal
    /// elements may end up in any order (the leaf sorts are pdqsort),
    /// exactly like the real crate — deterministic callers use total
    /// orders, under which "equal" means "identical".
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_by_less(self.as_parallel_slice_mut(), &|a, b| a < b);
    }

    /// Sort by a comparator, potentially in parallel.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> Ordering + Send + Sync,
    {
        par_sort_by_less(self.as_parallel_slice_mut(), &|a, b| {
            compare(a, b) == Ordering::Less
        });
    }

    /// Sort by a key, potentially in parallel.
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Send + Sync,
    {
        par_sort_by_less(self.as_parallel_slice_mut(), &|a, b| key(a) < key(b));
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

fn cmp_from_less<T>(less: &(impl Fn(&T, &T) -> bool + Sync), a: &T, b: &T) -> Ordering {
    if less(a, b) {
        Ordering::Less
    } else if less(b, a) {
        Ordering::Greater
    } else {
        Ordering::Equal
    }
}

fn par_sort_by_less<T: Send>(data: &mut [T], less: &(impl Fn(&T, &T) -> bool + Sync)) {
    let len = data.len();
    let width = current_num_threads();
    if width <= 1 || len <= SORT_SEQ_CUTOFF {
        data.sort_unstable_by(|a, b| cmp_from_less(less, a, b));
        return;
    }
    let mut buf: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
    // SAFETY: `MaybeUninit` contents need no initialization.
    unsafe { buf.set_len(len) };
    // ~2 leaves per lane: merges cost an extra pass per level, so
    // leaves stay coarser than the iterator drivers' chunks.
    let grain = (len / (width * 2)).max(SORT_SEQ_CUTOFF);
    sort_rec(data, &mut buf, less, grain);
}

fn sort_rec<T: Send>(
    data: &mut [T],
    buf: &mut [MaybeUninit<T>],
    less: &(impl Fn(&T, &T) -> bool + Sync),
    grain: usize,
) {
    let len = data.len();
    if len <= grain {
        data.sort_unstable_by(|a, b| cmp_from_less(less, a, b));
        return;
    }
    let mid = len / 2;
    {
        let (dl, dr) = data.split_at_mut(mid);
        let (bl, br) = buf.split_at_mut(mid);
        join(
            || sort_rec(dl, bl, less, grain),
            || sort_rec(dr, br, less, grain),
        );
    }
    merge_halves(data, mid, buf, less);
}

/// Merge the sorted halves `[0, mid)` / `[mid, len)` of `src` through
/// `buf`, then copy the merged order back. Stable: the right half wins
/// only when strictly less.
fn merge_halves<T>(
    src: &mut [T],
    mid: usize,
    buf: &mut [MaybeUninit<T>],
    less: &(impl Fn(&T, &T) -> bool + Sync),
) {
    let n = src.len();
    debug_assert!(buf.len() >= n);
    let (mut i, mut j, mut k) = (0usize, mid, 0usize);
    while i < mid && j < n {
        let take_right = less(&src[j], &src[i]);
        let idx = if take_right { j } else { i };
        // SAFETY: a bitwise copy into uninitialized scratch; `src[idx]`
        // stays live (and is never dropped through `buf`).
        buf[k] = MaybeUninit::new(unsafe { std::ptr::read(&src[idx]) });
        if take_right {
            j += 1;
        } else {
            i += 1;
        }
        k += 1;
    }
    // SAFETY: the remainder regions are disjoint from `buf` and sized
    // to fit; after these copies `buf[..n]` holds a permutation of the
    // original bits of `src[..n]`.
    unsafe {
        std::ptr::copy_nonoverlapping(src.as_ptr().add(i), buf.as_mut_ptr().add(k).cast(), mid - i);
        std::ptr::copy_nonoverlapping(
            src.as_ptr().add(j),
            buf.as_mut_ptr().add(k + mid - i).cast(),
            n - j,
        );
        // Publish: overwrite `src` with the merged permutation. Pure
        // bit movement — no element is dropped or duplicated after
        // this completes.
        std::ptr::copy_nonoverlapping(buf.as_ptr().cast::<T>(), src.as_mut_ptr(), n);
    }
}
