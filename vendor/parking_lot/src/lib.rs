//! Offline stand-in for the subset of the `parking_lot` API this
//! workspace uses, backed by `std::sync`. Poisoning is swallowed:
//! `parking_lot` locks are not poisoned, and the callers rely on that
//! (the barrier propagates PE panics itself).

use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};
use std::time::Duration;

/// A mutex that hands out guards without a poison `Result`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard matching `parking_lot::MutexGuard`'s deref surface. The
/// `Option` lets the condvar take the std guard out during waits without
/// any unsafe code; it is `Some` at every API boundary.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<StdGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(inner) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside waits")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside waits")
    }
}

/// Result of a timed condvar wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable matching the `parking_lot::Condvar` call shapes the
/// workspace uses (`wait`, `wait_for`, `notify_one`, `notify_all`).
#[derive(Default, Debug)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present outside waits");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present outside waits");
        let (g, timed_out) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, t)) => (g, t.timed_out()),
            Err(p) => {
                let (g, t) = p.into_inner();
                (g, t.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_millis(10));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }
}
